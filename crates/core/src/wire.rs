//! The worker wire protocol of the process-isolated backend.
//!
//! The paper's setting is a real computational grid: workers are remote OS
//! instances reachable only through links that *serialize* every task and
//! result.  The `grasp-proc` backend reproduces that boundary with worker
//! processes connected by local pipes, and this module defines the framing
//! both ends speak.  It lives in `grasp-core` because the protocol — not the
//! transport — is the contract: any future remote backend (sockets, batch
//! systems) reuses these types unchanged.
//!
//! The workspace's offline `serde` shim derives are markers (no codegen), so
//! framing is explicit and versioned:
//!
//! ```text
//! +-------+---------+-----+-------------+---------+-------------+
//! | magic | version | tag | payload len | payload | checksum    |
//! | 4 B   | 1 B     | 1 B | 4 B LE      | n B     | 4 B LE FNV  |
//! +-------+---------+-----+-------------+---------+-------------+
//! ```
//!
//! The checksum is FNV-1a/32 over the tag byte followed by the payload, so a
//! frame corrupted anywhere past the fixed header is rejected with a typed
//! [`GraspError::WireProtocol`] instead of being mis-parsed.  Every decode
//! path returns `Result` — a truncated, oversized, or garbage frame must
//! never panic the master or a worker.
//!
//! Integers are little-endian; floats travel as IEEE-754 bit patterns.

use crate::error::GraspError;
use std::io::Read;

/// Frame preamble: `b"GRSP"`.
pub const WIRE_MAGIC: [u8; 4] = *b"GRSP";

/// Current protocol version; bumped on any incompatible frame change.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on one frame's payload (rejects garbage length fields before
/// any allocation is attempted).
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Task payload kind: no payload bytes — the worker synthesises the task's
/// declared work with its calibrated spin kernel (the default, and what the
/// thread-backend parity tests exercise).
pub const PAYLOAD_SPIN: u32 = 0;

/// Task payload kind: a serialized `grasp-workloads` mat-mul row band
/// (`MatMulBandTask`).
pub const PAYLOAD_MATMUL: u32 = 1;

/// Task payload kind: a serialized `grasp-workloads` imaging frame task
/// (`ImagingFrameTask`).
pub const PAYLOAD_IMAGING: u32 = 2;

const TAG_HELLO: u8 = 0;
const TAG_INIT: u8 = 1;
const TAG_TASK: u8 = 2;
const TAG_DONE: u8 = 3;
const TAG_FAILED: u8 = 4;
const TAG_HEARTBEAT: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_JOIN: u8 = 7;
const TAG_WELCOME: u8 = 8;
const TAG_GOODBYE: u8 = 9;

/// Capability bit advertised by a worker that can execute [`PAYLOAD_SPIN`]
/// tasks (every worker can).
pub const CAP_SPIN: u32 = 1 << PAYLOAD_SPIN;

/// Capability bit for [`PAYLOAD_MATMUL`] tasks.
pub const CAP_MATMUL: u32 = 1 << PAYLOAD_MATMUL;

/// Capability bit for [`PAYLOAD_IMAGING`] tasks.
pub const CAP_IMAGING: u32 = 1 << PAYLOAD_IMAGING;

/// Every capability the stock worker binaries implement.
pub const CAP_ALL: u32 = CAP_SPIN | CAP_MATMUL | CAP_IMAGING;

/// The capability bit a worker must advertise to be handed tasks of payload
/// `kind` (0 for kinds beyond the bitmask — no worker can claim them, so the
/// master rejects such joins instead of dispatching undecodable payloads).
pub fn payload_capability(kind: u32) -> u32 {
    1u32.checked_shl(kind).unwrap_or(0)
}

/// FNV-1a 64-bit hash — the deterministic digest workloads use to compare a
/// worker's result against a locally computed reference without shipping the
/// full output back over the wire.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental [`fnv1a_64`]: feed byte chunks as they are produced instead
/// of concatenating them first.  `Fnv64::new().update(x).update(y).finish()`
/// equals `fnv1a_64` over `x ++ y`, so result digests can be folded straight
/// over computed values (or borrowed wire slices) with no intermediate
/// buffer.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV-1a/64 offset basis (the hash of the empty input).
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Fold `bytes` into the running hash; returns `self` for chaining.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// The digest of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

fn fnv1a_32(tag: u8, bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in std::iter::once(tag).chain(bytes.iter().copied()) {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn wire_err(detail: impl Into<String>) -> GraspError {
    GraspError::WireProtocol {
        detail: detail.into(),
    }
}

/// Append-only little-endian byte encoder used by the protocol and by the
/// workloads' serializable task representations.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `u32`-length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// The encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian byte decoder matching [`ByteWriter`]; every
/// accessor returns [`GraspError::WireProtocol`] on underrun.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Borrow the next `n` bytes without copying.  The returned slice lives
    /// as long as the underlying buffer, not the reader, so a caller can
    /// keep slicing after the reader is dropped — this is the primitive the
    /// zero-copy [`FrameView`] decode path is built on.
    pub fn take_slice(&mut self, n: usize) -> Result<&'a [u8], GraspError> {
        if self.buf.len() - self.pos < n {
            return Err(wire_err(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, GraspError> {
        Ok(self.take_slice(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, GraspError> {
        Ok(u32::from_le_bytes(self.take_slice(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, GraspError> {
        Ok(u64::from_le_bytes(self.take_slice(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, GraspError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Borrow a `u32`-length-prefixed byte string without copying.
    pub fn take_bytes_slice(&mut self) -> Result<&'a [u8], GraspError> {
        let len = self.take_u32()? as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(wire_err(format!("byte string length {len} exceeds cap")));
        }
        self.take_slice(len)
    }

    /// Read a `u32`-length-prefixed byte string into an owned `Vec`.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, GraspError> {
        Ok(self.take_bytes_slice()?.to_vec())
    }

    /// Borrow a `u32`-length-prefixed UTF-8 string without copying.
    pub fn take_str_slice(&mut self) -> Result<&'a str, GraspError> {
        std::str::from_utf8(self.take_bytes_slice()?).map_err(|_| wire_err("invalid UTF-8 string"))
    }

    /// Read a `u32`-length-prefixed UTF-8 string into an owned `String`.
    pub fn take_str(&mut self) -> Result<String, GraspError> {
        Ok(self.take_str_slice()?.to_string())
    }

    /// Succeed only if every byte has been consumed (catches frames whose
    /// payload is longer than the message it claims to carry).
    pub fn finish(&self) -> Result<(), GraspError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(wire_err(format!(
                "{} trailing bytes after message body",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// One protocol message, master ⇄ worker.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Worker → master, first frame after spawn: the worker is alive.
    Hello {
        /// The worker's OS process id.
        pid: u64,
    },
    /// Master → worker, first frame after spawn: run parameters.
    Init {
        /// How often the worker's heartbeat thread reports liveness.
        heartbeat_interval_s: f64,
        /// Spin-kernel iterations per declared work unit (the
        /// [`PAYLOAD_SPIN`] cost model, mirroring the thread backend).
        spin_per_work_unit: u64,
    },
    /// Master → worker: execute one work unit.
    Task {
        /// Global unit id within the running skeleton.
        unit_id: u64,
        /// Declared work of the unit.
        work: f64,
        /// Payload kind ([`PAYLOAD_SPIN`], [`PAYLOAD_MATMUL`], …).
        kind: u32,
        /// Kind-specific serialized task representation (empty for spin).
        payload: Vec<u8>,
    },
    /// Worker → master: a unit completed.
    Done {
        /// The completed unit.
        unit_id: u64,
        /// Wall seconds the computation took on the worker — the per-unit
        /// observation the master feeds to the adaptation engine.
        elapsed_s: f64,
        /// Deterministic digest of the computed result (0 for spin tasks).
        digest: u64,
    },
    /// Worker → master: a unit's payload could not be executed; the worker
    /// survives and the master may retry the unit elsewhere.
    Failed {
        /// The failing unit.
        unit_id: u64,
        /// Human-readable cause.
        detail: String,
    },
    /// Worker → master: periodic liveness signal (sent by a side thread even
    /// while a long task is computing).
    Heartbeat,
    /// Master → worker: drain and exit cleanly.
    Shutdown,
    /// Worker → master, first frame of the network registration handshake:
    /// who the worker is and what it speaks.  The master validates the
    /// version and the capability mask before admitting it to the pool (a
    /// mismatch is answered with [`WireMsg::Shutdown`] and a closed
    /// connection).
    Join {
        /// The worker's OS process id (diagnostic; also how a master that
        /// spawned the process matches the connection to its child handle).
        pid: u64,
        /// The wire protocol version the worker speaks ([`WIRE_VERSION`]).
        wire_version: u32,
        /// Bitmask of payload kinds the worker can execute ([`CAP_SPIN`],
        /// [`CAP_MATMUL`], …).
        capabilities: u32,
    },
    /// Master → worker: the registration was accepted; run parameters.
    /// The network analogue of [`WireMsg::Init`], carrying the identity the
    /// master assigned on top.
    Welcome {
        /// The pool slot the master assigned (stable for the connection's
        /// lifetime; never reused within a run).
        worker_id: u64,
        /// How often the worker's heartbeat thread reports liveness
        /// (0 disables the heartbeat thread — liveness then rests on
        /// connection EOF alone).
        heartbeat_interval_s: f64,
        /// Spin-kernel iterations per declared work unit.
        spin_per_work_unit: u64,
    },
    /// Worker → master: the worker wants to leave gracefully.  It finishes
    /// the tasks already on its wire, but must be handed no new ones; the
    /// master answers with [`WireMsg::Shutdown`] once the window drains.
    Goodbye {
        /// Human-readable reason (diagnostics only).
        reason: String,
    },
}

impl WireMsg {
    /// Borrow this message as a [`FrameView`] (the inverse of
    /// [`FrameView::to_owned`]): heap-carrying fields become slices into
    /// `self`, everything else is copied by value.
    pub fn as_view(&self) -> FrameView<'_> {
        match self {
            WireMsg::Hello { pid } => FrameView::Hello { pid: *pid },
            WireMsg::Init {
                heartbeat_interval_s,
                spin_per_work_unit,
            } => FrameView::Init {
                heartbeat_interval_s: *heartbeat_interval_s,
                spin_per_work_unit: *spin_per_work_unit,
            },
            WireMsg::Task {
                unit_id,
                work,
                kind,
                payload,
            } => FrameView::Task {
                unit_id: *unit_id,
                work: *work,
                kind: *kind,
                payload,
            },
            WireMsg::Done {
                unit_id,
                elapsed_s,
                digest,
            } => FrameView::Done {
                unit_id: *unit_id,
                elapsed_s: *elapsed_s,
                digest: *digest,
            },
            WireMsg::Failed { unit_id, detail } => FrameView::Failed {
                unit_id: *unit_id,
                detail,
            },
            WireMsg::Heartbeat => FrameView::Heartbeat,
            WireMsg::Shutdown => FrameView::Shutdown,
            WireMsg::Join {
                pid,
                wire_version,
                capabilities,
            } => FrameView::Join {
                pid: *pid,
                wire_version: *wire_version,
                capabilities: *capabilities,
            },
            WireMsg::Welcome {
                worker_id,
                heartbeat_interval_s,
                spin_per_work_unit,
            } => FrameView::Welcome {
                worker_id: *worker_id,
                heartbeat_interval_s: *heartbeat_interval_s,
                spin_per_work_unit: *spin_per_work_unit,
            },
            WireMsg::Goodbye { reason } => FrameView::Goodbye { reason },
        }
    }

    /// Encode the message as one complete frame (header + payload +
    /// checksum), ready to write to the transport.
    pub fn encode(&self) -> Vec<u8> {
        let mut frame = Vec::new();
        self.encode_into(&mut frame);
        frame
    }

    /// Encode the message as one complete frame into `frame`, clearing and
    /// reusing its capacity — the steady-state encode path allocates nothing
    /// once the buffer has grown to the working frame size.
    pub fn encode_into(&self, frame: &mut Vec<u8>) {
        self.as_view().encode_into(frame)
    }

    /// Decode one frame from the front of `buf`, returning the message and
    /// the number of bytes consumed.  Truncated, corrupted, oversized and
    /// unknown frames all yield [`GraspError::WireProtocol`]; this function
    /// never panics on any input.
    pub fn decode_slice(buf: &[u8]) -> Result<(WireMsg, usize), GraspError> {
        let (view, used) = FrameView::decode_slice(buf)?;
        Ok((view.to_owned(), used))
    }

    /// Read one frame from a blocking reader.  Returns `Ok(None)` on a clean
    /// end-of-stream *boundary* (the peer closed the pipe between frames);
    /// an end-of-stream mid-frame is a truncation error.  Allocates a fresh
    /// frame buffer per call — steady-state receive loops should hold a
    /// buffer and use [`read_frame_into`] + [`FrameView::decode_slice`]
    /// instead.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Option<WireMsg>, GraspError> {
        let mut buf = Vec::new();
        match read_frame_into(r, &mut buf)? {
            None => Ok(None),
            Some(n) => Ok(Some(FrameView::decode_slice(&buf[..n])?.0.to_owned())),
        }
    }
}

fn read_exactly<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), GraspError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            wire_err("truncated frame: peer closed mid-message")
        } else {
            wire_err(format!("transport read failed: {e}"))
        }
    })
}

/// A zero-copy view of one protocol message: the borrowed analogue of
/// [`WireMsg`] whose heap-carrying fields ([`FrameView::Task`] payload,
/// [`FrameView::Failed`] detail, [`FrameView::Goodbye`] reason) are slices
/// into the frame buffer they were decoded from.  Decoding a view allocates
/// nothing; [`FrameView::to_owned`] converts to the owned [`WireMsg`] when a
/// caller needs to keep the message past the buffer's next reuse.  The two
/// types encode byte-identically — `FrameView` is a different *path* onto
/// the same wire format, not a different format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameView<'a> {
    /// See [`WireMsg::Hello`].
    Hello {
        /// The worker's OS process id.
        pid: u64,
    },
    /// See [`WireMsg::Init`].
    Init {
        /// How often the worker's heartbeat thread reports liveness.
        heartbeat_interval_s: f64,
        /// Spin-kernel iterations per declared work unit.
        spin_per_work_unit: u64,
    },
    /// See [`WireMsg::Task`]; the payload borrows the frame buffer.
    Task {
        /// Global unit id within the running skeleton.
        unit_id: u64,
        /// Declared work of the unit.
        work: f64,
        /// Payload kind ([`PAYLOAD_SPIN`], [`PAYLOAD_MATMUL`], …).
        kind: u32,
        /// Kind-specific serialized task representation (empty for spin),
        /// borrowed from the read buffer — valid until the source's next
        /// receive.
        payload: &'a [u8],
    },
    /// See [`WireMsg::Done`].
    Done {
        /// The completed unit.
        unit_id: u64,
        /// Wall seconds the computation took on the worker.
        elapsed_s: f64,
        /// Deterministic digest of the computed result (0 for spin tasks).
        digest: u64,
    },
    /// See [`WireMsg::Failed`]; the detail borrows the frame buffer.
    Failed {
        /// The failing unit.
        unit_id: u64,
        /// Human-readable cause, borrowed from the read buffer.
        detail: &'a str,
    },
    /// See [`WireMsg::Heartbeat`].
    Heartbeat,
    /// See [`WireMsg::Shutdown`].
    Shutdown,
    /// See [`WireMsg::Join`].
    Join {
        /// The worker's OS process id.
        pid: u64,
        /// The wire protocol version the worker speaks.
        wire_version: u32,
        /// Bitmask of payload kinds the worker can execute.
        capabilities: u32,
    },
    /// See [`WireMsg::Welcome`].
    Welcome {
        /// The pool slot the master assigned.
        worker_id: u64,
        /// How often the worker's heartbeat thread reports liveness.
        heartbeat_interval_s: f64,
        /// Spin-kernel iterations per declared work unit.
        spin_per_work_unit: u64,
    },
    /// See [`WireMsg::Goodbye`]; the reason borrows the frame buffer.
    Goodbye {
        /// Human-readable reason, borrowed from the read buffer.
        reason: &'a str,
    },
}

impl<'a> FrameView<'a> {
    fn tag(&self) -> u8 {
        match self {
            FrameView::Hello { .. } => TAG_HELLO,
            FrameView::Init { .. } => TAG_INIT,
            FrameView::Task { .. } => TAG_TASK,
            FrameView::Done { .. } => TAG_DONE,
            FrameView::Failed { .. } => TAG_FAILED,
            FrameView::Heartbeat => TAG_HEARTBEAT,
            FrameView::Shutdown => TAG_SHUTDOWN,
            FrameView::Join { .. } => TAG_JOIN,
            FrameView::Welcome { .. } => TAG_WELCOME,
            FrameView::Goodbye { .. } => TAG_GOODBYE,
        }
    }

    fn write_body(&self, out: &mut Vec<u8>) {
        fn put_u32(out: &mut Vec<u8>, v: u32) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_f64(out: &mut Vec<u8>, v: f64) {
            put_u64(out, v.to_bits());
        }
        fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
            put_u32(out, v.len() as u32);
            out.extend_from_slice(v);
        }
        match self {
            FrameView::Hello { pid } => put_u64(out, *pid),
            FrameView::Init {
                heartbeat_interval_s,
                spin_per_work_unit,
            } => {
                put_f64(out, *heartbeat_interval_s);
                put_u64(out, *spin_per_work_unit);
            }
            FrameView::Task {
                unit_id,
                work,
                kind,
                payload,
            } => {
                put_u64(out, *unit_id);
                put_f64(out, *work);
                put_u32(out, *kind);
                put_bytes(out, payload);
            }
            FrameView::Done {
                unit_id,
                elapsed_s,
                digest,
            } => {
                put_u64(out, *unit_id);
                put_f64(out, *elapsed_s);
                put_u64(out, *digest);
            }
            FrameView::Failed { unit_id, detail } => {
                put_u64(out, *unit_id);
                put_bytes(out, detail.as_bytes());
            }
            FrameView::Heartbeat | FrameView::Shutdown => {}
            FrameView::Join {
                pid,
                wire_version,
                capabilities,
            } => {
                put_u64(out, *pid);
                put_u32(out, *wire_version);
                put_u32(out, *capabilities);
            }
            FrameView::Welcome {
                worker_id,
                heartbeat_interval_s,
                spin_per_work_unit,
            } => {
                put_u64(out, *worker_id);
                put_f64(out, *heartbeat_interval_s);
                put_u64(out, *spin_per_work_unit);
            }
            FrameView::Goodbye { reason } => put_bytes(out, reason.as_bytes()),
        }
    }

    /// Encode this view as one complete frame into `frame`, clearing and
    /// reusing its capacity.  Byte-identical to [`WireMsg::encode`] of the
    /// owned equivalent — the frame format does not know which path built
    /// it.
    pub fn encode_into(&self, frame: &mut Vec<u8>) {
        frame.clear();
        frame.extend_from_slice(&WIRE_MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(self.tag());
        frame.extend_from_slice(&[0u8; 4]); // length, patched below
        let body_start = frame.len();
        self.write_body(frame);
        let len = (frame.len() - body_start) as u32;
        frame[6..10].copy_from_slice(&len.to_le_bytes());
        let sum = fnv1a_32(self.tag(), &frame[body_start..]);
        frame.extend_from_slice(&sum.to_le_bytes());
    }

    /// Decode a message body without copying any variable-length field.
    pub fn from_body(tag: u8, body: &'a [u8]) -> Result<FrameView<'a>, GraspError> {
        let mut r = ByteReader::new(body);
        let msg = match tag {
            TAG_HELLO => FrameView::Hello { pid: r.take_u64()? },
            TAG_INIT => FrameView::Init {
                heartbeat_interval_s: r.take_f64()?,
                spin_per_work_unit: r.take_u64()?,
            },
            TAG_TASK => FrameView::Task {
                unit_id: r.take_u64()?,
                work: r.take_f64()?,
                kind: r.take_u32()?,
                payload: r.take_bytes_slice()?,
            },
            TAG_DONE => FrameView::Done {
                unit_id: r.take_u64()?,
                elapsed_s: r.take_f64()?,
                digest: r.take_u64()?,
            },
            TAG_FAILED => FrameView::Failed {
                unit_id: r.take_u64()?,
                detail: r.take_str_slice()?,
            },
            TAG_HEARTBEAT => FrameView::Heartbeat,
            TAG_SHUTDOWN => FrameView::Shutdown,
            TAG_JOIN => FrameView::Join {
                pid: r.take_u64()?,
                wire_version: r.take_u32()?,
                capabilities: r.take_u32()?,
            },
            TAG_WELCOME => FrameView::Welcome {
                worker_id: r.take_u64()?,
                heartbeat_interval_s: r.take_f64()?,
                spin_per_work_unit: r.take_u64()?,
            },
            TAG_GOODBYE => FrameView::Goodbye {
                reason: r.take_str_slice()?,
            },
            other => return Err(wire_err(format!("unknown message tag {other}"))),
        };
        r.finish()?;
        Ok(msg)
    }

    /// Decode one frame from the front of `buf` without copying, returning
    /// the view and the number of bytes consumed.  Truncated, corrupted,
    /// oversized and unknown frames all yield [`GraspError::WireProtocol`];
    /// this function never panics on any input.
    pub fn decode_slice(buf: &'a [u8]) -> Result<(FrameView<'a>, usize), GraspError> {
        if buf.is_empty() {
            return Err(wire_err("empty input where a frame was expected"));
        }
        if buf.len() < 10 {
            return Err(wire_err("truncated frame: peer closed mid-message"));
        }
        let magic = [buf[0], buf[1], buf[2], buf[3]];
        if magic != WIRE_MAGIC {
            return Err(wire_err(format!("bad frame magic {magic:02x?}")));
        }
        let version = buf[4];
        if version != WIRE_VERSION {
            return Err(wire_err(format!(
                "wire version mismatch: got {version}, speak {WIRE_VERSION}"
            )));
        }
        let tag = buf[5];
        let len = u32::from_le_bytes(buf[6..10].try_into().unwrap()) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(wire_err(format!(
                "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD} cap"
            )));
        }
        let total = 10 + len + 4;
        if buf.len() < total {
            return Err(wire_err("truncated frame: peer closed mid-message"));
        }
        let body = &buf[10..10 + len];
        let expect = u32::from_le_bytes(buf[10 + len..total].try_into().unwrap());
        let got = fnv1a_32(tag, body);
        if got != expect {
            return Err(wire_err(format!(
                "frame checksum mismatch (got {got:#010x}, frame says {expect:#010x})"
            )));
        }
        Ok((Self::from_body(tag, body)?, total))
    }

    /// Copy every borrowed field into an owned [`WireMsg`].  This is the
    /// only allocation point of the borrowed decode path, and only the
    /// heap-carrying variants (`Task`, `Failed`, `Goodbye`) allocate at
    /// all.
    pub fn to_owned(&self) -> WireMsg {
        match *self {
            FrameView::Hello { pid } => WireMsg::Hello { pid },
            FrameView::Init {
                heartbeat_interval_s,
                spin_per_work_unit,
            } => WireMsg::Init {
                heartbeat_interval_s,
                spin_per_work_unit,
            },
            FrameView::Task {
                unit_id,
                work,
                kind,
                payload,
            } => WireMsg::Task {
                unit_id,
                work,
                kind,
                payload: payload.to_vec(),
            },
            FrameView::Done {
                unit_id,
                elapsed_s,
                digest,
            } => WireMsg::Done {
                unit_id,
                elapsed_s,
                digest,
            },
            FrameView::Failed { unit_id, detail } => WireMsg::Failed {
                unit_id,
                detail: detail.to_string(),
            },
            FrameView::Heartbeat => WireMsg::Heartbeat,
            FrameView::Shutdown => WireMsg::Shutdown,
            FrameView::Join {
                pid,
                wire_version,
                capabilities,
            } => WireMsg::Join {
                pid,
                wire_version,
                capabilities,
            },
            FrameView::Welcome {
                worker_id,
                heartbeat_interval_s,
                spin_per_work_unit,
            } => WireMsg::Welcome {
                worker_id,
                heartbeat_interval_s,
                spin_per_work_unit,
            },
            FrameView::Goodbye { reason } => WireMsg::Goodbye {
                reason: reason.to_string(),
            },
        }
    }
}

/// Read one complete frame from a blocking reader into `buf`, clearing and
/// reusing its capacity (no allocation once the buffer has grown to the
/// working frame size), and return the frame's total length.  Returns
/// `Ok(None)` on a clean end-of-stream boundary; an end-of-stream mid-frame
/// is a truncation error.  The frame's magic, version and length cap are
/// validated here (they bound the read); the checksum and body are
/// validated by the [`FrameView::decode_slice`] call that follows.
pub fn read_frame_into<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<Option<usize>, GraspError> {
    // Distinguish a clean close (0 bytes available) from truncation.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(wire_err(format!("transport read failed: {e}"))),
        }
    }
    let mut header = [0u8; 9]; // magic[1..4] + version + tag + len
    read_exactly(r, &mut header)?;
    let magic = [first[0], header[0], header[1], header[2]];
    if magic != WIRE_MAGIC {
        return Err(wire_err(format!("bad frame magic {magic:02x?}")));
    }
    let version = header[3];
    if version != WIRE_VERSION {
        return Err(wire_err(format!(
            "wire version mismatch: got {version}, speak {WIRE_VERSION}"
        )));
    }
    let len = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(wire_err(format!(
            "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD} cap"
        )));
    }
    let total = 10 + len + 4;
    buf.clear();
    buf.resize(total, 0);
    buf[0] = first[0];
    buf[1..10].copy_from_slice(&header);
    read_exactly(r, &mut buf[10..])?;
    Ok(Some(total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WireMsg> {
        vec![
            WireMsg::Hello { pid: 4242 },
            WireMsg::Init {
                heartbeat_interval_s: 0.25,
                spin_per_work_unit: 500,
            },
            WireMsg::Task {
                unit_id: 7,
                work: 3.5,
                kind: PAYLOAD_MATMUL,
                payload: vec![1, 2, 3, 250],
            },
            WireMsg::Done {
                unit_id: 7,
                elapsed_s: 0.0125,
                digest: 0xdead_beef,
            },
            WireMsg::Failed {
                unit_id: 9,
                detail: "bad payload: wanted 8 bytes".into(),
            },
            WireMsg::Heartbeat,
            WireMsg::Shutdown,
            WireMsg::Join {
                pid: 31337,
                wire_version: WIRE_VERSION as u32,
                capabilities: CAP_ALL,
            },
            WireMsg::Welcome {
                worker_id: 3,
                heartbeat_interval_s: 0.25,
                spin_per_work_unit: 500,
            },
            WireMsg::Goodbye {
                reason: "drained by operator".into(),
            },
        ]
    }

    #[test]
    fn payload_capabilities_cover_the_known_kinds_and_reject_the_rest() {
        assert_eq!(payload_capability(PAYLOAD_SPIN), CAP_SPIN);
        assert_eq!(payload_capability(PAYLOAD_MATMUL), CAP_MATMUL);
        assert_eq!(payload_capability(PAYLOAD_IMAGING), CAP_IMAGING);
        assert_eq!(CAP_ALL, CAP_SPIN | CAP_MATMUL | CAP_IMAGING);
        // A kind beyond the mask maps to "no worker can claim it".
        assert_eq!(payload_capability(99), 0);
        assert_eq!(payload_capability(32), 0);
    }

    #[test]
    fn every_message_round_trips_through_a_frame() {
        for msg in samples() {
            let frame = msg.encode();
            let (back, used) = WireMsg::decode_slice(&frame).unwrap();
            assert_eq!(back, msg);
            assert_eq!(used, frame.len(), "whole frame consumed");
        }
    }

    #[test]
    fn frames_round_trip_through_a_byte_stream() {
        let mut stream = Vec::new();
        for msg in samples() {
            stream.extend_from_slice(&msg.encode());
        }
        let mut r = stream.as_slice();
        let mut decoded = Vec::new();
        while let Some(m) = WireMsg::read_from(&mut r).unwrap() {
            decoded.push(m);
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn clean_eof_is_none_but_mid_frame_eof_is_an_error() {
        let mut empty: &[u8] = &[];
        assert_eq!(WireMsg::read_from(&mut empty).unwrap(), None);
        let frame = WireMsg::Heartbeat.encode();
        for cut in 1..frame.len() {
            let mut r = &frame[..cut];
            let err = WireMsg::read_from(&mut r)
                .expect_err("every truncation must be rejected")
                .to_string();
            assert!(err.contains("wire protocol"), "{err}");
        }
    }

    #[test]
    fn corrupted_frames_are_rejected_not_misparsed() {
        let msg = WireMsg::Task {
            unit_id: 1,
            work: 2.0,
            kind: PAYLOAD_SPIN,
            payload: vec![9; 16],
        };
        let frame = msg.encode();
        // Flip one bit anywhere: magic/version/tag/len errors or checksum
        // mismatch — never a successful decode of different content, and
        // never a panic.
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            if let Ok((m, _)) = WireMsg::decode_slice(&bad) {
                panic!("corrupted byte {i} decoded as {m:?}");
            }
        }
    }

    #[test]
    fn oversized_length_fields_are_rejected_before_allocation() {
        let mut frame = WireMsg::Heartbeat.encode();
        frame[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = WireMsg::decode_slice(&frame).unwrap_err().to_string();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn foreign_versions_and_tags_are_rejected() {
        let mut frame = WireMsg::Heartbeat.encode();
        frame[4] = WIRE_VERSION + 1;
        assert!(WireMsg::decode_slice(&frame).is_err());
        let mut frame = WireMsg::Heartbeat.encode();
        frame[5] = 99; // unknown tag — checksum covers the tag, so fix it up.
        let sum = fnv1a_32(99, &[]);
        let n = frame.len();
        frame[n - 4..].copy_from_slice(&sum.to_le_bytes());
        let err = WireMsg::decode_slice(&frame).unwrap_err().to_string();
        assert!(err.contains("unknown message tag"), "{err}");
    }

    #[test]
    fn byte_reader_reports_trailing_and_missing_bytes() {
        let mut w = ByteWriter::new();
        w.put_u32(5);
        w.put_str("hello");
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u32().unwrap(), 5);
        assert_eq!(r.take_str().unwrap(), "hello");
        r.finish().unwrap();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u32().unwrap(), 5);
        assert!(r.finish().is_err(), "unread bytes must be flagged");
        let mut r = ByteReader::new(&bytes[..2]);
        assert!(r.take_u32().is_err(), "underrun must be flagged");
    }

    #[test]
    fn borrowed_views_round_trip_and_encode_identically_to_owned() {
        let mut reused = Vec::new();
        for msg in samples() {
            let frame = msg.encode();
            // Borrowed decode sees exactly what owned decode sees.
            let (view, used) = FrameView::decode_slice(&frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(view, msg.as_view());
            assert_eq!(view.to_owned(), msg);
            // Both encode paths produce byte-identical frames, and the
            // reused buffer carries nothing over from the previous message.
            view.encode_into(&mut reused);
            assert_eq!(reused, frame);
            msg.encode_into(&mut reused);
            assert_eq!(reused, frame);
        }
    }

    #[test]
    fn borrowed_decode_rejects_everything_owned_decode_rejects() {
        let frame = WireMsg::Task {
            unit_id: 1,
            work: 2.0,
            kind: PAYLOAD_SPIN,
            payload: vec![9; 16],
        }
        .encode();
        for cut in 0..frame.len() {
            assert!(FrameView::decode_slice(&frame[..cut]).is_err());
        }
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            if let Ok((v, _)) = FrameView::decode_slice(&bad) {
                panic!("corrupted byte {i} decoded as {v:?}");
            }
        }
    }

    #[test]
    fn read_frame_into_reuses_one_buffer_across_a_stream() {
        let mut stream = Vec::new();
        for msg in samples() {
            stream.extend_from_slice(&msg.encode());
        }
        let mut r = stream.as_slice();
        let mut buf = Vec::new();
        let mut decoded = Vec::new();
        while let Some(n) = read_frame_into(&mut r, &mut buf).unwrap() {
            let (view, used) = FrameView::decode_slice(&buf[..n]).unwrap();
            assert_eq!(used, n);
            decoded.push(view.to_owned());
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
    }
}
