//! # grasp-core — Adaptive Structured Parallelism (GRASP)
//!
//! A Rust reproduction of the GRASP methodology from *González-Vélez & Cole,
//! "Adaptive structured parallelism for computational grids", PPoPP 2007*.
//!
//! GRASP instruments **algorithmic skeletons** — here the paper's two
//! skeletons, the [`farm::TaskFarm`] and the [`pipeline::Pipeline`], plus
//! compositions — with their intrinsic structural properties so that a
//! program running on a non-dedicated, heterogeneous grid can *steer its own
//! execution*:
//!
//! 1. **Programming** — the user picks a skeleton and parameterises it
//!    ([`grasp::Grasp`], [`task::TaskSpec`], [`pipeline::StageSpec`]).
//! 2. **Compilation** — the skeleton is bound to a grid, a monitoring
//!    registry, and a [`config::GraspConfig`] (static phase).
//! 3. **Calibration** — Algorithm 1: every allocated node executes a sample
//!    of the real work; nodes are ranked by extrapolated performance, either
//!    from execution times alone or adjusted by univariate / multivariate
//!    regression over CPU load and bandwidth ([`calibration`]).
//! 4. **Execution** — Algorithm 2: the chosen nodes execute the remaining
//!    work while a monitor compares observed times against a performance
//!    threshold *Z*; exceeding it triggers recalibration and/or rescheduling
//!    according to the skeleton's properties ([`execution`], [`adaptation`]).
//!
//! The crate is backend-agnostic through the [`skeleton::Backend`] trait:
//! jobs are written once as composable [`skeleton::Skeleton`] expressions
//! (farm, pipeline, farm-of-pipelines, pipeline-of-farms, …) and run
//! unchanged on the reference [`skeleton::SimBackend`] (the [`gridsim`]
//! simulated grid; see DESIGN.md for the substitution rationale) or on the
//! real-thread `ThreadBackend` of the companion `grasp-exec` crate.
//!
//! ## Quick example
//!
//! ```
//! use grasp_core::prelude::*;
//! use gridsim::{Grid, TopologyBuilder};
//!
//! // A small heterogeneous cluster (idle, so purely illustrative).
//! let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(8, 20.0, 80.0, 1));
//! // 200 identical farm tasks of 50 work units, 1 KiB in/out.
//! let skeleton = Skeleton::farm(TaskSpec::uniform(200, 50.0, 1024, 1024));
//! let report = Grasp::new(GraspConfig::default())
//!     .run(&SimBackend::new(&grid), &skeleton)
//!     .expect("valid workload on an all-up grid");
//! assert_eq!(report.outcome.completed, 200);
//!
//! // Nesting is one more constructor: a farm of two pipeline instances runs
//! // through exactly the same entry point, and adapts as one unit.
//! let lane = Skeleton::pipeline(StageSpec::balanced(3, 10.0, 1024), 25);
//! let nested = Skeleton::farm_of(vec![lane.clone(), lane]);
//! let report = Grasp::new(GraspConfig::default())
//!     .run(&SimBackend::new(&grid), &nested)
//!     .expect("valid workload on an all-up grid");
//! assert_eq!(report.outcome.completed, 50);
//! assert!(report.outcome.conserves_units_of(&nested));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptation;
pub mod calibration;
pub mod config;
pub mod engine;
pub mod error;
pub mod execution;
pub mod farm;
pub mod grasp;
pub mod metrics;
pub mod pipeline;
pub mod properties;
pub mod scheduler;
pub mod shm;
pub mod skeleton;
pub mod task;
pub mod threshold;
pub mod transport;
pub mod wire;

/// Convenient glob import for downstream users.
pub mod prelude {
    pub use crate::adaptation::{AdaptationAction, AdaptationLog};
    pub use crate::calibration::{CalibrationMode, CalibrationReport, Calibrator};
    pub use crate::config::{
        BackendConfig, CalibrationConfig, ExecutionConfig, FaultInjection, GraspConfig,
    };
    pub use crate::engine::{AdaptationDirective, AdaptationEngine, EnginePoll, WallClock};
    pub use crate::error::GraspError;
    pub use crate::execution::ExecutionMonitor;
    pub use crate::farm::{FarmOutcome, TaskFarm};
    pub use crate::grasp::{Grasp, GraspRunReport, PhaseTimings};
    pub use crate::metrics::{efficiency, speedup, ThroughputTimeline};
    pub use crate::pipeline::{Pipeline, PipelineOutcome, StageSpec};
    pub use crate::properties::{SkeletonKind, SkeletonProperties};
    pub use crate::scheduler::SchedulePolicy;
    pub use crate::skeleton::{
        Backend, FarmedStage, NetDeparture, NetMemberReport, OutcomeDetail, ResilienceReport,
        SimBackend, Skeleton, SkeletonOutcome,
    };
    pub use crate::task::{TaskOutcome, TaskSpec};
    pub use crate::threshold::ThresholdPolicy;
}

pub use prelude::*;
