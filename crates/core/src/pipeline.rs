//! The adaptive pipeline skeleton.
//!
//! GRASP's second skeleton (reference \[7\] of the paper: "Towards fully
//! adaptive pipeline parallelism for heterogeneous distributed
//! environments").  A stream of items flows through an ordered chain of
//! stages, each stage mapped to one grid node.  The pipeline's intrinsic
//! properties differ from the farm's — items are ordered, stages may carry
//! state, and adaptation means *remapping whole stages* rather than
//! redirecting individual tasks — so the adaptation actions differ too:
//!
//! * calibration ranks the candidate nodes and maps the heaviest stages onto
//!   the fittest nodes (largest-first matching);
//! * during execution each stage's recent service times are compared against
//!   its own threshold *Zₛ*; when a stage degrades beyond the threshold the
//!   skeleton **feeds back into calibration**: the node pool is re-ranked
//!   from the monitor's current load readings and the whole stage→node
//!   mapping is recomputed, paying a one-off state-transfer penalty for every
//!   stage that moves.

use crate::adaptation::AdaptationLog;
use crate::calibration::{CalibrationReport, Calibrator};
use crate::config::GraspConfig;
use crate::engine::{AdaptationDirective, AdaptationEngine};
use crate::error::GraspError;
use crate::metrics::ThroughputTimeline;
use crate::properties::SkeletonProperties;
use crate::task::TaskSpec;
use gridmon::MonitorRegistry;
use gridsim::{Grid, NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Static description of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Stage index (0-based position in the chain).
    pub id: usize,
    /// Work units each item costs at this stage.
    pub work_per_item: f64,
    /// Bytes forwarded to the next stage per item.
    pub forward_bytes: u64,
    /// Bytes of stage-local state that must move if the stage is remapped.
    pub state_bytes: u64,
}

impl StageSpec {
    /// Create a stage.
    pub fn new(id: usize, work_per_item: f64, forward_bytes: u64, state_bytes: u64) -> Self {
        StageSpec {
            id,
            work_per_item: work_per_item.max(0.0),
            forward_bytes,
            state_bytes,
        }
    }

    /// A balanced `n`-stage pipeline with identical per-stage cost.
    pub fn balanced(n: usize, work_per_item: f64, forward_bytes: u64) -> Vec<StageSpec> {
        (0..n.max(1))
            .map(|i| StageSpec::new(i, work_per_item, forward_bytes, 0))
            .collect()
    }
}

/// Everything a pipeline run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// Virtual time until the last item left the last stage.
    pub makespan: SimTime,
    /// Number of items processed.
    pub items: usize,
    /// Items per virtual second over the whole run.
    pub throughput: f64,
    /// Final stage → node mapping.
    pub stage_assignment: Vec<(usize, NodeId)>,
    /// The initial calibration report.
    pub calibration: CalibrationReport,
    /// Adaptations taken (stage remaps and the recalibrations driving them).
    pub adaptation: AdaptationLog,
    /// Mean observed service time per stage (seconds per item).
    pub per_stage_service: Vec<f64>,
    /// Item completions over time.
    pub timeline: ThroughputTimeline,
    /// Per-item completion times (ordered by item index).
    pub item_completions: Vec<SimTime>,
}

impl PipelineOutcome {
    /// Steady-state throughput estimated from the second half of the stream
    /// (ignores pipeline fill).
    pub fn steady_state_throughput(&self) -> f64 {
        let n = self.item_completions.len();
        if n < 4 {
            return self.throughput;
        }
        let half = n / 2;
        let t0 = self.item_completions[half - 1];
        let t1 = self.item_completions[n - 1];
        let dt = (t1 - t0).as_secs();
        if dt <= 0.0 {
            self.throughput
        } else {
            (n - half) as f64 / dt
        }
    }
}

/// The adaptive pipeline skeleton.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: GraspConfig,
    properties: SkeletonProperties,
    /// Recent-service window used by the per-stage monitor.
    monitor_window: usize,
}

impl Pipeline {
    /// A pipeline with the given configuration.  The per-stage monitor's
    /// recent-service window comes from the shared
    /// [`crate::config::ExecutionConfig::monitor_window`].
    pub fn new(config: GraspConfig) -> Self {
        Pipeline {
            monitor_window: config.execution.monitor_window.max(1),
            config,
            properties: SkeletonProperties::pipeline(1.0, true),
        }
    }

    /// Override the skeleton properties.
    pub fn with_properties(mut self, properties: SkeletonProperties) -> Self {
        self.properties = properties;
        self
    }

    /// Override the number of recent items the per-stage monitor averages
    /// over before judging a stage degraded (minimum 1).
    #[deprecated(
        since = "0.2.0",
        note = "set `GraspConfig::execution.monitor_window` instead — the \
                window is shared by every skeleton"
    )]
    pub fn with_monitor_window(mut self, window: usize) -> Self {
        self.monitor_window = window.max(1);
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &GraspConfig {
        &self.config
    }

    /// The skeleton's intrinsic properties.
    pub fn properties(&self) -> &SkeletonProperties {
        &self.properties
    }

    /// Process `items` stream elements through `stages` on `grid`, using all
    /// grid nodes as candidates.
    pub fn run(
        &self,
        grid: &Grid,
        stages: &[StageSpec],
        items: usize,
    ) -> Result<PipelineOutcome, GraspError> {
        self.run_on(grid, &grid.node_ids(), stages, items)
    }

    /// Process the stream on an explicit candidate node pool.
    pub fn run_on(
        &self,
        grid: &Grid,
        candidates: &[NodeId],
        stages: &[StageSpec],
        items: usize,
    ) -> Result<PipelineOutcome, GraspError> {
        self.config.validate()?;
        if stages.is_empty() {
            return Err(GraspError::EmptyPipeline);
        }
        if items == 0 {
            return Err(GraspError::EmptyWorkload);
        }
        if candidates.is_empty() {
            return Err(GraspError::NoUsableNodes);
        }
        let master = self.config.master.unwrap_or(candidates[0]);
        let mut registry = MonitorRegistry::new(master, 256);

        // ----------------------- Calibration + mapping -----------------------
        // Calibrate with per-stage probe tasks so that node ranking reflects
        // the real stage costs; probes do not consume stream items.
        let probe_tasks: Vec<TaskSpec> = stages
            .iter()
            .map(|s| TaskSpec::new(s.id, s.work_per_item, s.forward_bytes, s.forward_bytes))
            .collect();
        let mut cal_cfg = self.config.calibration;
        // A pipeline needs at least one node per stage if available.
        cal_cfg.min_nodes = cal_cfg.min_nodes.max(stages.len().min(candidates.len()));
        let calibrator = Calibrator::new(cal_cfg);
        let calibration = calibrator.calibrate(
            grid,
            &mut registry,
            candidates,
            &probe_tasks,
            master,
            SimTime::ZERO,
        )?;

        let mut assignment = Self::map_stages(stages, &calibration.ranking);
        if assignment.len() != stages.len() {
            return Err(GraspError::CalibrationFailed(
                "not enough usable nodes to host every stage".to_string(),
            ));
        }

        // Per-stage thresholds Zₛ derived from the expected service time on
        // the node each stage is currently mapped to.  The stage-mode
        // adaptation engine owns the thresholds, the recent-service windows,
        // the remap budget and the audit log; this pipeline feeds it service
        // observations and applies the remap directives it emits.
        let exec_cfg = &self.config.execution;
        let mut engine = AdaptationEngine::for_stages(
            exec_cfg,
            Self::stage_thresholds(grid, stages, &assignment, &self.config, SimTime::ZERO),
        )
        .with_stage_window(self.monitor_window);

        // ------------------------------ Execution ----------------------------
        let start = calibration.duration;
        let mut timeline = ThroughputTimeline::new(exec_cfg.monitor_interval_s);
        let mut item_completions = Vec::with_capacity(items);
        // stage_free[s] = when stage s finished (or will finish) its latest item.
        let mut stage_free: Vec<SimTime> = vec![start; stages.len()];
        let mut service_sums: Vec<f64> = vec![0.0; stages.len()];
        let mut service_counts: Vec<usize> = vec![0; stages.len()];

        for item in 0..items {
            // The item enters stage 0 as soon as stage 0 is free.
            let mut ready = stage_free[0];
            for (s, stage) in stages.iter().enumerate() {
                let node = assignment[s].1;
                // Wait for the stage to be free (previous item still in it).
                let enter = ready.max(stage_free[s]);
                let mut attempt_node = node;
                let mut attempt_enter = enter;
                let mut banned: Vec<NodeId> = Vec::new();
                let finish = loop {
                    match grid.execute_within(attempt_node, stage.work_per_item, attempt_enter, 1e6)
                    {
                        Some(f) => break f,
                        None => {
                            // The hosting node died (or dies before finishing
                            // and never recovers).  Feed back into calibration
                            // — excluding nodes already seen to fail for this
                            // item — and retry the stage on its new node.
                            if !engine.adaptive()
                                || !engine.can_recalibrate()
                                || banned.len() >= candidates.len()
                            {
                                return Err(GraspError::TaskLost { task: item });
                            }
                            banned.push(attempt_node);
                            engine.try_consume_recalibration();
                            Self::remap_all(
                                grid,
                                &mut registry,
                                stages,
                                candidates,
                                &banned,
                                &mut assignment,
                                &mut stage_free,
                                &mut engine,
                                &self.config,
                                attempt_enter,
                                f64::INFINITY,
                            )?;
                            attempt_node = assignment[s].1;
                            attempt_enter = ready.max(stage_free[s]);
                        }
                    }
                };
                let service = (finish - enter).as_secs();
                service_sums[s] += service;
                service_counts[s] += 1;
                stage_free[s] = finish;

                // ---------------- per-stage Algorithm 2 ----------------
                // The engine watches each stage's recent services against
                // its threshold Zₛ and emits a remap directive on breach;
                // the pipeline applies it by re-ranking and remapping the
                // whole chain (the only legal move for an ordered,
                // possibly stateful stage structure).
                if let Some(AdaptationDirective::RemapStage { recent_mean, .. }) =
                    engine.observe_stage(finish, s, service)
                {
                    engine.try_consume_recalibration();
                    Self::remap_all(
                        grid,
                        &mut registry,
                        stages,
                        candidates,
                        &[],
                        &mut assignment,
                        &mut stage_free,
                        &mut engine,
                        &self.config,
                        finish,
                        recent_mean,
                    )?;
                }

                // Forward the item to the next stage.
                let node_now = assignment[s].1;
                ready = if s + 1 < stages.len() {
                    let next_node = assignment[s + 1].1;
                    let xfer = grid
                        .transfer(node_now, next_node, stage.forward_bytes, finish)
                        .map(|e| e.duration)
                        .unwrap_or(SimTime::ZERO);
                    finish + xfer
                } else {
                    finish
                };
            }
            timeline.record(ready);
            item_completions.push(ready);
        }

        let makespan = *item_completions.last().unwrap_or(&start);
        let per_stage_service: Vec<f64> = service_sums
            .iter()
            .zip(&service_counts)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect();
        let throughput = if makespan.as_secs() > 0.0 {
            items as f64 / makespan.as_secs()
        } else {
            0.0
        };

        Ok(PipelineOutcome {
            makespan,
            items,
            throughput,
            stage_assignment: assignment,
            calibration,
            adaptation: engine.into_log(),
            per_stage_service,
            timeline,
            item_completions,
        })
    }

    /// Largest-first mapping: heaviest stage onto the fittest node.
    fn map_stages(stages: &[StageSpec], ranking: &[NodeId]) -> Vec<(usize, NodeId)> {
        if ranking.is_empty() {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..stages.len()).collect();
        order.sort_by(|&a, &b| {
            stages[b]
                .work_per_item
                .partial_cmp(&stages[a].work_per_item)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut assignment = vec![None; stages.len()];
        for (rank, &stage_idx) in order.iter().enumerate() {
            // Fewer nodes than stages: reuse nodes round-robin.
            let node = ranking[rank % ranking.len()];
            assignment[stage_idx] = Some((stages[stage_idx].id, node));
        }
        assignment.into_iter().flatten().collect()
    }

    /// Per-stage thresholds Zₛ from the expected service time of each stage
    /// on its currently assigned node under the load observed at `now`.
    fn stage_thresholds(
        grid: &Grid,
        stages: &[StageSpec],
        assignment: &[(usize, NodeId)],
        config: &GraspConfig,
        now: SimTime,
    ) -> Vec<f64> {
        stages
            .iter()
            .zip(assignment)
            .map(|(s, &(_, node))| {
                let speed = grid.effective_speed(node, now).max(1e-9);
                config
                    .execution
                    .threshold
                    .compute(&[s.work_per_item / speed])
            })
            .collect()
    }

    /// Feed back into calibration: re-rank every candidate node from the
    /// monitor's current readings, recompute the whole stage→node mapping and
    /// migrate the state of every stage that moved.  This is the pipeline's
    /// adaptation action ("modifying the task scheduling according to the
    /// inherent properties of the skeleton in hand" — for a pipeline the only
    /// legal move is remapping whole stages).
    #[allow(clippy::too_many_arguments)]
    fn remap_all(
        grid: &Grid,
        registry: &mut MonitorRegistry,
        stages: &[StageSpec],
        candidates: &[NodeId],
        exclude: &[NodeId],
        assignment: &mut Vec<(usize, NodeId)>,
        stage_free: &mut [SimTime],
        engine: &mut AdaptationEngine,
        config: &GraspConfig,
        now: SimTime,
        trigger_value: f64,
    ) -> Result<(), GraspError> {
        // Rank candidates by the speed the monitor currently attributes to
        // them (base speed × observed availability).
        let mut ranked: Vec<(NodeId, f64)> = candidates
            .iter()
            .copied()
            .filter(|&n| grid.is_up(n, now) && !exclude.contains(&n))
            .map(|n| {
                let obs = registry.observe(grid, n, now);
                let base = grid.node(n).map(|s| s.base_speed).unwrap_or(1.0);
                (n, base * (1.0 - obs.cpu_load))
            })
            .collect();
        if ranked.is_empty() {
            return Err(GraspError::NoUsableNodes);
        }
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let ranking: Vec<NodeId> = ranked.iter().map(|(n, _)| *n).collect();
        let new_assignment = Self::map_stages(stages, &ranking);

        for (s, stage) in stages.iter().enumerate() {
            let old = assignment[s].1;
            let new = new_assignment[s].1;
            if old != new {
                let migration = grid
                    .transfer(old, new, stage.state_bytes, now)
                    .map(|e| e.duration)
                    .unwrap_or(SimTime::ZERO);
                stage_free[s] = stage_free[s].max(now) + migration;
                engine.note_stage_remapped(now, s, old, new, trigger_value);
            }
        }
        // Times observed under the old mapping must not condemn the new one.
        engine.clear_stage_windows();
        *assignment = new_assignment;
        engine.note_stages_recalibrated(
            now,
            assignment.iter().map(|(_, n)| *n).collect(),
            trigger_value,
        );
        engine.set_stage_thresholds(Self::stage_thresholds(
            grid, stages, assignment, config, now,
        ));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdPolicy;
    use gridsim::{ConstantLoad, FaultPlan, GridBuilder, SpikeLoad, TopologyBuilder};

    fn quiet_grid(n: usize) -> Grid {
        Grid::dedicated(TopologyBuilder::uniform_cluster(n, 40.0))
    }

    fn stages4() -> Vec<StageSpec> {
        vec![
            StageSpec::new(0, 20.0, 64 * 1024, 128 * 1024),
            StageSpec::new(1, 40.0, 64 * 1024, 128 * 1024),
            StageSpec::new(2, 30.0, 64 * 1024, 128 * 1024),
            StageSpec::new(3, 10.0, 64 * 1024, 128 * 1024),
        ]
    }

    #[test]
    fn processes_every_item_in_order() {
        let grid = quiet_grid(6);
        let out = Pipeline::new(GraspConfig::default())
            .run(&grid, &stages4(), 50)
            .unwrap();
        assert_eq!(out.items, 50);
        assert_eq!(out.item_completions.len(), 50);
        // Completions are monotonically non-decreasing (stream order holds).
        assert!(out.item_completions.windows(2).all(|w| w[0] <= w[1]));
        assert!(out.throughput > 0.0);
        assert!(out.steady_state_throughput() > 0.0);
        assert_eq!(out.per_stage_service.len(), 4);
        assert_eq!(out.timeline.total(), 50);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let grid = quiet_grid(4);
        let p = Pipeline::new(GraspConfig::default());
        assert!(matches!(
            p.run(&grid, &[], 10),
            Err(GraspError::EmptyPipeline)
        ));
        assert!(matches!(
            p.run(&grid, &stages4(), 0),
            Err(GraspError::EmptyWorkload)
        ));
        assert!(matches!(
            p.run_on(&grid, &[], &stages4(), 10),
            Err(GraspError::NoUsableNodes)
        ));
    }

    #[test]
    fn heaviest_stage_goes_to_the_fastest_node() {
        // Node speeds 10, 20, 40, 80 — stage 1 is the heaviest.
        let mut b = TopologyBuilder::new();
        let s = b.add_site("c", gridsim::LinkSpec::lan());
        for (i, speed) in [10.0, 20.0, 40.0, 80.0].iter().enumerate() {
            b.add_node(s, format!("n{i}"), *speed);
        }
        let grid = Grid::dedicated(b.build());
        let out = Pipeline::new(GraspConfig::default())
            .run(&grid, &stages4(), 20)
            .unwrap();
        let heaviest = out
            .stage_assignment
            .iter()
            .find(|(id, _)| *id == 1)
            .unwrap()
            .1;
        assert_eq!(
            heaviest,
            NodeId(3),
            "assignment: {:?}",
            out.stage_assignment
        );
    }

    #[test]
    fn pipeline_throughput_tracks_the_bottleneck_stage() {
        let grid = quiet_grid(5);
        let stages = StageSpec::balanced(4, 20.0, 1024);
        let out = Pipeline::new(GraspConfig::default())
            .run(&grid, &stages, 100)
            .unwrap();
        // Bottleneck service time = 20 work / 40 speed = 0.5 s/item → ~2 items/s.
        let tput = out.steady_state_throughput();
        assert!((tput - 2.0).abs() < 0.5, "expected ~2 items/s, got {tput}");
    }

    #[test]
    fn adaptive_pipeline_remaps_a_degraded_stage() {
        // 6 nodes; the four initially chosen nodes become 95 % loaded after
        // 20 s while two spares stay idle.  The adaptive pipeline should feed
        // back into calibration, move the heavy stages to the spares and end
        // up substantially faster than the rigid mapping.
        let make_grid = || {
            let topo = TopologyBuilder::uniform_cluster(6, 40.0);
            let node_ids = topo.node_ids();
            let mut builder = GridBuilder::new(topo).quantum(0.1);
            for &n in &node_ids {
                if n.index() < 4 {
                    builder = builder.node_load(
                        n,
                        SpikeLoad::new(0.0, 0.95, SimTime::new(20.0), SimTime::new(1e6)),
                    );
                }
            }
            builder.build()
        };
        let stages = stages4();
        let mut adaptive_cfg = GraspConfig::default();
        adaptive_cfg.execution.threshold = ThresholdPolicy::Factor { factor: 2.0 };
        let adaptive = Pipeline::new(adaptive_cfg)
            .run(&make_grid(), &stages, 200)
            .unwrap();
        let mut rigid_cfg = GraspConfig::default();
        rigid_cfg.execution.adaptive = false;
        let rigid = Pipeline::new(rigid_cfg)
            .run(&make_grid(), &stages, 200)
            .unwrap();
        assert!(
            adaptive.adaptation.stage_remaps() > 0,
            "expected at least one remap"
        );
        assert!(
            adaptive.makespan.as_secs() < rigid.makespan.as_secs() * 0.6,
            "adaptive {}s vs rigid {}s",
            adaptive.makespan.as_secs(),
            rigid.makespan.as_secs()
        );
    }

    #[test]
    fn stage_hosted_on_a_revoked_node_migrates() {
        let topo = TopologyBuilder::uniform_cluster(5, 40.0);
        let node_ids = topo.node_ids();
        // Revoke every originally attractive node at t=30 except the last.
        let mut faults = FaultPlan::none();
        for &n in &node_ids[..2] {
            faults = faults.with_outage(n, SimTime::new(30.0), SimTime::new(1e9));
        }
        let grid = GridBuilder::new(topo).faults(faults).build();
        let stages = stages4();
        let out = Pipeline::new(GraspConfig::default())
            .run(&grid, &stages, 120)
            .unwrap();
        assert_eq!(out.items, 120);
        // The final assignment must avoid the revoked nodes.
        assert!(out.stage_assignment.iter().all(|(_, n)| n.index() >= 2));
    }

    #[test]
    fn constant_background_load_does_not_cause_thrashing() {
        let topo = TopologyBuilder::uniform_cluster(6, 40.0);
        let grid = GridBuilder::new(topo)
            .uniform_node_load(ConstantLoad::new(0.2))
            .build();
        let out = Pipeline::new(GraspConfig::default())
            .run(&grid, &stages4(), 100)
            .unwrap();
        // A uniform 20 % load is within the 2x default threshold (measured
        // against the load-aware expectation), so nothing should move.
        assert_eq!(out.adaptation.stage_remaps(), 0);
        assert_eq!(out.items, 100);
    }

    #[test]
    fn more_stages_than_nodes_still_works() {
        let grid = quiet_grid(2);
        let stages = StageSpec::balanced(5, 10.0, 1024);
        let out = Pipeline::new(GraspConfig::default())
            .run(&grid, &stages, 30)
            .unwrap();
        assert_eq!(out.items, 30);
        assert_eq!(out.stage_assignment.len(), 5);
    }

    #[test]
    fn monitor_window_comes_from_the_shared_config() {
        let grid = quiet_grid(4);
        let mut cfg = GraspConfig::default();
        cfg.execution.monitor_window = 1;
        let out = Pipeline::new(cfg).run(&grid, &stages4(), 10).unwrap();
        assert_eq!(out.items, 10);
        // The deprecated builder still overrides for old call sites.
        #[allow(deprecated)]
        let p = Pipeline::new(GraspConfig::default()).with_monitor_window(0);
        let out = p.run(&grid, &stages4(), 10).unwrap();
        assert_eq!(out.items, 10);
    }
}
