//! Configuration of the four GRASP phases.
//!
//! The programming phase "parameterises the API calls to GRASP"; everything
//! tunable about calibration and adaptive execution is collected here so that
//! the experiment harness can sweep it.

use crate::calibration::CalibrationMode;
use crate::error::GraspError;
use crate::scheduler::SchedulePolicy;
use crate::threshold::ThresholdPolicy;
use gridsim::NodeId;
use gridstats::OutlierPolicy;
use serde::{Deserialize, Serialize};

/// Parameters of the calibration phase (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// How node performance is extrapolated from the samples.
    pub mode: CalibrationMode,
    /// How many sample tasks each allocated node executes.
    pub samples_per_node: usize,
    /// Fraction of the candidate pool selected as "fittest" (0, 1].
    pub selection_fraction: f64,
    /// Never select fewer than this many nodes (provided enough are up).
    pub min_nodes: usize,
    /// Outlier rejection applied to each node's sample times before ranking.
    pub outlier_policy: OutlierPolicy,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            mode: CalibrationMode::TimeOnly,
            samples_per_node: 1,
            // Keep the whole pool by default: on a mostly homogeneous grid the
            // transient losers at calibration time still contribute capacity
            // later.  Strongly heterogeneous or WAN-separated pools should
            // lower this (the calibration experiments use 0.5).
            selection_fraction: 1.0,
            min_nodes: 1,
            outlier_policy: OutlierPolicy::Iqr { k: 1.5 },
        }
    }
}

/// Parameters of the adaptive execution phase (Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// How the performance threshold *Z* is derived from calibration.
    pub threshold: ThresholdPolicy,
    /// Monitoring period in virtual seconds: how often the monitor node
    /// collects execution times and evaluates the threshold.
    pub monitor_interval_s: f64,
    /// Upper bound on recalibrations per job (guards against thrashing).
    pub max_recalibrations: usize,
    /// Master switch: `false` turns Algorithm 2 off entirely (the
    /// non-adaptive baseline used throughout the evaluation).
    pub adaptive: bool,
    /// A node whose recent mean time exceeds `demote_factor × Z` is demoted
    /// (dropped from the chosen set) without waiting for a full recalibration.
    pub demote_factor: f64,
    /// Never adapt below this many active nodes.
    pub min_active_nodes: usize,
    /// How many recent observations the monitor judges a resource by (≥ 1).
    /// The farm keeps at most this many per-node task times per interval;
    /// the pipeline averages this many recent per-stage service times before
    /// declaring a stage degraded.  Shared by every skeleton so that nested
    /// compositions monitor uniformly.
    pub monitor_window: usize,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            threshold: ThresholdPolicy::default(),
            monitor_interval_s: 5.0,
            max_recalibrations: 10,
            adaptive: true,
            demote_factor: 3.0,
            min_active_nodes: 2,
            monitor_window: 8,
        }
    }
}

/// Complete configuration of a GRASP job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraspConfig {
    /// Calibration-phase parameters.
    pub calibration: CalibrationConfig,
    /// Execution-phase parameters.
    pub execution: ExecutionConfig,
    /// Farm chunking policy.
    pub scheduler: SchedulePolicy,
    /// Master / root node; `None` selects the first candidate node.
    pub master: Option<NodeId>,
    /// Seed for any randomised decisions (kept for reproducibility).
    pub seed: u64,
}

impl Default for GraspConfig {
    fn default() -> Self {
        GraspConfig {
            calibration: CalibrationConfig::default(),
            execution: ExecutionConfig::default(),
            scheduler: SchedulePolicy::default(),
            master: None,
            seed: 42,
        }
    }
}

impl GraspConfig {
    /// The fully adaptive configuration with statistical (multivariate)
    /// calibration — the "everything on" setting.
    pub fn adaptive_multivariate() -> Self {
        let mut c = GraspConfig::default();
        c.calibration.mode = CalibrationMode::Multivariate;
        c
    }

    /// A non-adaptive baseline: no node selection (every node is used), no
    /// monitoring, static block scheduling.  This is the classic rigid
    /// implementation the paper's adaptive skeletons are compared against.
    pub fn static_baseline() -> Self {
        GraspConfig {
            calibration: CalibrationConfig {
                mode: CalibrationMode::TimeOnly,
                samples_per_node: 0,
                selection_fraction: 1.0,
                min_nodes: 1,
                outlier_policy: OutlierPolicy::None,
            },
            execution: ExecutionConfig {
                adaptive: false,
                ..ExecutionConfig::default()
            },
            scheduler: SchedulePolicy::StaticBlock,
            master: None,
            seed: 42,
        }
    }

    /// A demand-driven (self-scheduling) baseline without calibration or
    /// monitoring — adaptivity through greedy work stealing only.
    pub fn self_scheduling_baseline() -> Self {
        let mut c = GraspConfig::static_baseline();
        c.scheduler = SchedulePolicy::SelfScheduling;
        c
    }

    /// Validate internal consistency; returns the offending reason on error.
    pub fn validate(&self) -> Result<(), GraspError> {
        if !(0.0..=1.0).contains(&self.calibration.selection_fraction)
            || self.calibration.selection_fraction == 0.0
        {
            return Err(GraspError::InvalidConfig(
                "selection_fraction must be in (0, 1]".to_string(),
            ));
        }
        if self.execution.monitor_interval_s <= 0.0 {
            return Err(GraspError::InvalidConfig(
                "monitor_interval_s must be positive".to_string(),
            ));
        }
        if self.execution.demote_factor < 1.0 {
            return Err(GraspError::InvalidConfig(
                "demote_factor must be at least 1.0".to_string(),
            ));
        }
        if self.calibration.min_nodes == 0 {
            return Err(GraspError::InvalidConfig(
                "min_nodes must be at least 1".to_string(),
            ));
        }
        if self.execution.monitor_window == 0 {
            return Err(GraspError::InvalidConfig(
                "monitor_window must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(GraspConfig::default().validate().is_ok());
        assert!(GraspConfig::adaptive_multivariate().validate().is_ok());
        assert!(GraspConfig::static_baseline().validate().is_ok());
        assert!(GraspConfig::self_scheduling_baseline().validate().is_ok());
    }

    #[test]
    fn baseline_configs_disable_adaptation() {
        let b = GraspConfig::static_baseline();
        assert!(!b.execution.adaptive);
        assert_eq!(b.scheduler, SchedulePolicy::StaticBlock);
        assert_eq!(b.calibration.selection_fraction, 1.0);
        let s = GraspConfig::self_scheduling_baseline();
        assert_eq!(s.scheduler, SchedulePolicy::SelfScheduling);
    }

    #[test]
    fn adaptive_multivariate_uses_statistical_calibration() {
        assert_eq!(
            GraspConfig::adaptive_multivariate().calibration.mode,
            CalibrationMode::Multivariate
        );
    }

    #[test]
    fn validation_rejects_bad_fraction() {
        let mut c = GraspConfig::default();
        c.calibration.selection_fraction = 0.0;
        assert!(matches!(c.validate(), Err(GraspError::InvalidConfig(_))));
        c.calibration.selection_fraction = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_interval_and_factors() {
        let mut c = GraspConfig::default();
        c.execution.monitor_interval_s = 0.0;
        assert!(c.validate().is_err());

        let mut c = GraspConfig::default();
        c.execution.demote_factor = 0.5;
        assert!(c.validate().is_err());

        let mut c = GraspConfig::default();
        c.calibration.min_nodes = 0;
        assert!(c.validate().is_err());

        let mut c = GraspConfig::default();
        c.execution.monitor_window = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn monitor_window_is_part_of_the_shared_surface() {
        assert_eq!(GraspConfig::default().execution.monitor_window, 8);
        let mut c = GraspConfig::default();
        c.execution.monitor_window = 3;
        assert!(c.validate().is_ok());
    }
}
