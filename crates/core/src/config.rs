//! Configuration of the four GRASP phases.
//!
//! The programming phase "parameterises the API calls to GRASP"; everything
//! tunable about calibration and adaptive execution is collected here so that
//! the experiment harness can sweep it.

use crate::calibration::CalibrationMode;
use crate::error::GraspError;
use crate::scheduler::SchedulePolicy;
use crate::threshold::ThresholdPolicy;
use gridsim::NodeId;
use gridstats::OutlierPolicy;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Parameters of the calibration phase (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// How node performance is extrapolated from the samples.
    pub mode: CalibrationMode,
    /// How many sample tasks each allocated node executes.
    pub samples_per_node: usize,
    /// Fraction of the candidate pool selected as "fittest" (0, 1].
    pub selection_fraction: f64,
    /// Never select fewer than this many nodes (provided enough are up).
    pub min_nodes: usize,
    /// Outlier rejection applied to each node's sample times before ranking.
    pub outlier_policy: OutlierPolicy,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            mode: CalibrationMode::TimeOnly,
            samples_per_node: 1,
            // Keep the whole pool by default: on a mostly homogeneous grid the
            // transient losers at calibration time still contribute capacity
            // later.  Strongly heterogeneous or WAN-separated pools should
            // lower this (the calibration experiments use 0.5).
            selection_fraction: 1.0,
            min_nodes: 1,
            outlier_policy: OutlierPolicy::Iqr { k: 1.5 },
        }
    }
}

/// Parameters of the adaptive execution phase (Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// How the performance threshold *Z* is derived from calibration.
    pub threshold: ThresholdPolicy,
    /// Monitoring period in virtual seconds: how often the monitor node
    /// collects execution times and evaluates the threshold.
    pub monitor_interval_s: f64,
    /// Upper bound on recalibrations per job (guards against thrashing).
    pub max_recalibrations: usize,
    /// Master switch: `false` turns Algorithm 2 off entirely (the
    /// non-adaptive baseline used throughout the evaluation).
    pub adaptive: bool,
    /// A node whose recent mean time exceeds `demote_factor × Z` is demoted
    /// (dropped from the chosen set) without waiting for a full recalibration.
    pub demote_factor: f64,
    /// Never adapt below this many active nodes.
    pub min_active_nodes: usize,
    /// How many recent observations the monitor judges a resource by (≥ 1).
    /// The farm keeps at most this many per-node task times per interval;
    /// the pipeline averages this many recent per-stage service times before
    /// declaring a stage degraded.  Shared by every skeleton so that nested
    /// compositions monitor uniformly.
    pub monitor_window: usize,
    /// Straggler speculation: once every unit has been handed out and no
    /// more than `speculate_tail_fraction × total` units remain in flight,
    /// idle workers may duplicate in-flight units (first verified result
    /// wins, the loser is discarded).  `0.0` (the default) disables
    /// speculation; the decision itself routes through the
    /// [`AdaptationEngine`](crate::engine::AdaptationEngine) as a
    /// [`Speculate`](crate::engine::AdaptationDirective::Speculate)
    /// directive, like every other adaptation.  Must be in `[0, 1]`.
    pub speculate_tail_fraction: f64,
    /// Stage breach response: `false` (the default) activates a pre-spawned
    /// standby replica alongside the slow worker (replication); `true`
    /// checkpoints the breached stage's queued items and **re-homes** the
    /// stage on a fresh worker — the old one stops — logged as a
    /// `StageMigrated` adaptation event.
    pub migrate_stages: bool,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            threshold: ThresholdPolicy::default(),
            monitor_interval_s: 5.0,
            max_recalibrations: 10,
            adaptive: true,
            demote_factor: 3.0,
            min_active_nodes: 2,
            monitor_window: 8,
            speculate_tail_fraction: 0.0,
            migrate_stages: false,
        }
    }
}

/// Complete configuration of a GRASP job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraspConfig {
    /// Calibration-phase parameters.
    pub calibration: CalibrationConfig,
    /// Execution-phase parameters.
    pub execution: ExecutionConfig,
    /// Farm chunking policy.
    pub scheduler: SchedulePolicy,
    /// Master / root node; `None` selects the first candidate node.
    pub master: Option<NodeId>,
    /// Seed for any randomised decisions (kept for reproducibility).
    pub seed: u64,
}

impl Default for GraspConfig {
    fn default() -> Self {
        GraspConfig {
            calibration: CalibrationConfig::default(),
            execution: ExecutionConfig::default(),
            scheduler: SchedulePolicy::default(),
            master: None,
            seed: 42,
        }
    }
}

impl GraspConfig {
    /// The fully adaptive configuration with statistical (multivariate)
    /// calibration — the "everything on" setting.
    pub fn adaptive_multivariate() -> Self {
        let mut c = GraspConfig::default();
        c.calibration.mode = CalibrationMode::Multivariate;
        c
    }

    /// A non-adaptive baseline: no node selection (every node is used), no
    /// monitoring, static block scheduling.  This is the classic rigid
    /// implementation the paper's adaptive skeletons are compared against.
    pub fn static_baseline() -> Self {
        GraspConfig {
            calibration: CalibrationConfig {
                mode: CalibrationMode::TimeOnly,
                samples_per_node: 0,
                selection_fraction: 1.0,
                min_nodes: 1,
                outlier_policy: OutlierPolicy::None,
            },
            execution: ExecutionConfig {
                adaptive: false,
                ..ExecutionConfig::default()
            },
            scheduler: SchedulePolicy::StaticBlock,
            master: None,
            seed: 42,
        }
    }

    /// A demand-driven (self-scheduling) baseline without calibration or
    /// monitoring — adaptivity through greedy work stealing only.
    pub fn self_scheduling_baseline() -> Self {
        let mut c = GraspConfig::static_baseline();
        c.scheduler = SchedulePolicy::SelfScheduling;
        c
    }

    /// Validate internal consistency; returns the offending reason on error.
    pub fn validate(&self) -> Result<(), GraspError> {
        if !(0.0..=1.0).contains(&self.calibration.selection_fraction)
            || self.calibration.selection_fraction == 0.0
        {
            return Err(GraspError::InvalidConfig(
                "selection_fraction must be in (0, 1]".to_string(),
            ));
        }
        if self.execution.monitor_interval_s <= 0.0 {
            return Err(GraspError::InvalidConfig(
                "monitor_interval_s must be positive".to_string(),
            ));
        }
        if self.execution.demote_factor < 1.0 {
            return Err(GraspError::InvalidConfig(
                "demote_factor must be at least 1.0".to_string(),
            ));
        }
        if self.calibration.min_nodes == 0 {
            return Err(GraspError::InvalidConfig(
                "min_nodes must be at least 1".to_string(),
            ));
        }
        if self.execution.monitor_window == 0 {
            return Err(GraspError::InvalidConfig(
                "monitor_window must be at least 1".to_string(),
            ));
        }
        if !(0.0..=1.0).contains(&self.execution.speculate_tail_fraction) {
            return Err(GraspError::InvalidConfig(
                "speculate_tail_fraction must be in [0, 1]".to_string(),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// shared backend configuration
// ---------------------------------------------------------------------------

/// The knobs every execution backend understands, collected once.
///
/// `ThreadBackend`, `ProcBackend`, and `NetBackend` used to each carry their
/// own copies of `with_spin_per_work_unit` / `with_calibration_samples` /
/// `with_max_task_attempts` / `with_heartbeat` / worker-binary resolution.
/// This builder is the single shared surface: construct one, hand it to any
/// backend's `with_config`, and only the knobs you actually set are applied
/// (`None` keeps that backend's default).  Knobs a backend has no use for —
/// heartbeats on the in-process thread backend, worker binaries anywhere but
/// proc/net — are documented as ignored by that backend, not an error, so
/// one `BackendConfig` can parameterise a cross-backend comparison.
///
/// ```
/// use grasp_core::config::BackendConfig;
///
/// let cfg = BackendConfig::new()
///     .calibration_samples(2)
///     .spin_per_work_unit(10_000)
///     .max_task_attempts(5)
///     .heartbeat(0.1, 2.0);
/// assert_eq!(cfg.calibration_samples, Some(2));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BackendConfig {
    /// Probe units per worker forming the Algorithm-1 calibration sample
    /// (`Some(0)` disables the adaptation engine; `None` defers to
    /// `GraspConfig::calibration.samples_per_node`).
    pub calibration_samples: Option<usize>,
    /// Spin-kernel iterations one declared work unit costs (clamped ≥ 1).
    pub spin_per_work_unit: Option<u64>,
    /// Dispatches per unit before the run fails (clamped ≥ 1).
    pub max_task_attempts: Option<usize>,
    /// Worker liveness cadence `(interval_s, timeout_s)`; ignored by the
    /// thread backend (panics are caught in-process, not timed out).
    pub heartbeat: Option<(f64, f64)>,
    /// Explicit worker binary for the process-spawning backends; ignored by
    /// the thread backend.  `None` keeps the usual resolution chain
    /// (environment variable, then a search next to the current executable).
    pub worker_bin: Option<PathBuf>,
    /// Worker panics tolerated before the thread backend retires the worker
    /// (proc/net workers die with their process instead).
    pub worker_panic_budget: Option<usize>,
    /// The fault-injection plan (defaults to no injected faults).
    pub faults: FaultInjection,
}

impl BackendConfig {
    /// A configuration that overrides nothing.
    pub fn new() -> Self {
        BackendConfig::default()
    }

    /// Set the calibration sample size per worker (0 disables adaptation).
    pub fn calibration_samples(mut self, samples: usize) -> Self {
        self.calibration_samples = Some(samples);
        self
    }

    /// Set the spin iterations one declared work unit costs.
    pub fn spin_per_work_unit(mut self, iters: u64) -> Self {
        self.spin_per_work_unit = Some(iters.max(1));
        self
    }

    /// Set the dispatch bound per unit.
    pub fn max_task_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = Some(attempts.max(1));
        self
    }

    /// Set the heartbeat cadence: workers report every `interval_s`, and
    /// silence past `timeout_s` declares a worker dead.
    pub fn heartbeat(mut self, interval_s: f64, timeout_s: f64) -> Self {
        self.heartbeat = Some((interval_s, timeout_s));
        self
    }

    /// Use an explicit worker binary (proc/net backends).
    pub fn worker_bin(mut self, path: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(path.into());
        self
    }

    /// Set how many panics the thread backend tolerates per worker.
    pub fn worker_panic_budget(mut self, budget: usize) -> Self {
        self.worker_panic_budget = Some(budget);
        self
    }

    /// Attach a fault-injection plan.
    pub fn faults(mut self, faults: FaultInjection) -> Self {
        self.faults = faults;
        self
    }
}

/// A typed fault-injection plan, shared by every backend.
///
/// Replaces the ad-hoc per-backend knobs (`with_panic_injection`,
/// `with_kill_injection`, `with_slowdown_injection`,
/// `with_worker_slowdown_injection`, `with_join_spawn`) with one struct, so
/// a test scripts its faults once and hands the plan to whichever backend it
/// is exercising.  Fields a backend cannot realise are ignored: threads
/// panic but are never SIGKILLed, processes are killed but never unwound.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultInjection {
    /// Thread backend: the first `panics` tasks deliberately panic inside
    /// the worker closure (exercising catch-and-requeue).
    pub panics: usize,
    /// Proc/net backends: SIGKILL worker `.worker` after it has delivered
    /// `.after_results` completed units — the hard-kill analogue of grid
    /// node revocation.
    pub kill: Option<KillSpec>,
    /// Thread backend: slow a worker down mid-run (the straggler injection
    /// behind the demotion, stealing, and speculation experiments).
    pub slowdown: Option<SlowdownSpec>,
    /// Net backend: grow the pool mid-run by spawning extra workers once
    /// enough results are in.
    pub join_spawn: Option<JoinSpawnSpec>,
}

/// Kill worker `worker` after `after_results` delivered units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Victim worker index.
    pub worker: usize,
    /// Results the victim delivers before the SIGKILL.
    pub after_results: usize,
}

/// Multiply a worker's per-unit cost by `factor` after `after_units`
/// completed units pool-wide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownSpec {
    /// The slowed worker; `None` slows whichever worker completes the
    /// `after_units`-th task (the "any straggler" form).
    pub worker: Option<usize>,
    /// Pool-wide completed units before the slowdown engages.
    pub after_units: usize,
    /// Cost multiplier (> 1 slows the worker down).
    pub factor: f64,
}

/// Spawn `extra` additional workers once `after_results` units completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinSpawnSpec {
    /// Pool-wide completed units before the spawns.
    pub after_results: usize,
    /// How many workers join (clamped ≥ 1).
    pub extra: usize,
}

impl FaultInjection {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultInjection::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.panics == 0
            && self.kill.is_none()
            && self.slowdown.is_none()
            && self.join_spawn.is_none()
    }

    /// Panic inside the first `panics` worker tasks (thread backend).
    pub fn panics(mut self, panics: usize) -> Self {
        self.panics = panics;
        self
    }

    /// SIGKILL `worker` after it delivered `after_results` units (proc/net).
    pub fn kill(mut self, worker: usize, after_results: usize) -> Self {
        self.kill = Some(KillSpec {
            worker,
            after_results,
        });
        self
    }

    /// Slow whichever worker completes the `after_units`-th task by
    /// `factor` (thread backend).
    pub fn slowdown(mut self, after_units: usize, factor: f64) -> Self {
        self.slowdown = Some(SlowdownSpec {
            worker: None,
            after_units,
            factor,
        });
        self
    }

    /// Slow worker `worker` by `factor` once `after_units` tasks completed
    /// pool-wide (thread backend).
    pub fn worker_slowdown(mut self, worker: usize, after_units: usize, factor: f64) -> Self {
        self.slowdown = Some(SlowdownSpec {
            worker: Some(worker),
            after_units,
            factor,
        });
        self
    }

    /// Spawn `extra` joining workers after `after_results` units (net).
    pub fn join_spawn(mut self, after_results: usize, extra: usize) -> Self {
        self.join_spawn = Some(JoinSpawnSpec {
            after_results,
            extra: extra.max(1),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(GraspConfig::default().validate().is_ok());
        assert!(GraspConfig::adaptive_multivariate().validate().is_ok());
        assert!(GraspConfig::static_baseline().validate().is_ok());
        assert!(GraspConfig::self_scheduling_baseline().validate().is_ok());
    }

    #[test]
    fn baseline_configs_disable_adaptation() {
        let b = GraspConfig::static_baseline();
        assert!(!b.execution.adaptive);
        assert_eq!(b.scheduler, SchedulePolicy::StaticBlock);
        assert_eq!(b.calibration.selection_fraction, 1.0);
        let s = GraspConfig::self_scheduling_baseline();
        assert_eq!(s.scheduler, SchedulePolicy::SelfScheduling);
    }

    #[test]
    fn adaptive_multivariate_uses_statistical_calibration() {
        assert_eq!(
            GraspConfig::adaptive_multivariate().calibration.mode,
            CalibrationMode::Multivariate
        );
    }

    #[test]
    fn validation_rejects_bad_fraction() {
        let mut c = GraspConfig::default();
        c.calibration.selection_fraction = 0.0;
        assert!(matches!(c.validate(), Err(GraspError::InvalidConfig(_))));
        c.calibration.selection_fraction = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_interval_and_factors() {
        let mut c = GraspConfig::default();
        c.execution.monitor_interval_s = 0.0;
        assert!(c.validate().is_err());

        let mut c = GraspConfig::default();
        c.execution.demote_factor = 0.5;
        assert!(c.validate().is_err());

        let mut c = GraspConfig::default();
        c.calibration.min_nodes = 0;
        assert!(c.validate().is_err());

        let mut c = GraspConfig::default();
        c.execution.monitor_window = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn monitor_window_is_part_of_the_shared_surface() {
        assert_eq!(GraspConfig::default().execution.monitor_window, 8);
        let mut c = GraspConfig::default();
        c.execution.monitor_window = 3;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn speculation_is_off_by_default_and_fraction_is_validated() {
        let d = GraspConfig::default();
        assert_eq!(d.execution.speculate_tail_fraction, 0.0);
        assert!(!d.execution.migrate_stages);

        let mut c = GraspConfig::default();
        c.execution.speculate_tail_fraction = 0.25;
        c.execution.migrate_stages = true;
        assert!(c.validate().is_ok());

        c.execution.speculate_tail_fraction = 1.5;
        assert!(c.validate().is_err());
        c.execution.speculate_tail_fraction = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn backend_config_sets_only_what_was_asked() {
        let cfg = BackendConfig::new()
            .calibration_samples(3)
            .spin_per_work_unit(0) // clamped
            .heartbeat(0.1, 2.0);
        assert_eq!(cfg.calibration_samples, Some(3));
        assert_eq!(cfg.spin_per_work_unit, Some(1));
        assert_eq!(cfg.heartbeat, Some((0.1, 2.0)));
        assert_eq!(cfg.max_task_attempts, None);
        assert_eq!(cfg.worker_bin, None);
        assert!(cfg.faults.is_empty());
    }

    #[test]
    fn fault_injection_plan_is_typed_and_composable() {
        let plan = FaultInjection::none()
            .panics(2)
            .kill(1, 4)
            .worker_slowdown(0, 8, 6.0)
            .join_spawn(10, 0); // extra clamped to ≥ 1
        assert!(!plan.is_empty());
        assert_eq!(plan.panics, 2);
        assert_eq!(
            plan.kill,
            Some(KillSpec {
                worker: 1,
                after_results: 4
            })
        );
        assert_eq!(
            plan.slowdown,
            Some(SlowdownSpec {
                worker: Some(0),
                after_units: 8,
                factor: 6.0
            })
        );
        assert_eq!(
            plan.join_spawn,
            Some(JoinSpawnSpec {
                after_results: 10,
                extra: 1
            })
        );
        // The anonymous-straggler form leaves the worker unpinned.
        assert_eq!(
            FaultInjection::none().slowdown(5, 2.0).slowdown,
            Some(SlowdownSpec {
                worker: None,
                after_units: 5,
                factor: 2.0
            })
        );
    }
}
