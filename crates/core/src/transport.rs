//! Framed transport abstraction under the master/worker [`crate::wire`]
//! protocol.
//!
//! The protocol module defines *what* the two ends say; this module defines
//! *how the bytes move*.  A master only ever needs three things from a
//! transport:
//!
//! * a [`FrameSink`] — ordered, framed sends towards the peer, where
//!   dropping the sink closes the direction (the worker sees EOF, which is
//!   the shutdown/demotion signal on every transport);
//! * a [`FrameSource`] — blocking framed receives, where `Ok(None)` is the
//!   peer's clean close and any mid-frame close is a typed truncation error
//!   (exactly [`WireMsg::read_from`]'s contract);
//! * an [`Acceptor`] — a non-blocking registration point where new peers
//!   appear as ready [`FramedConnection`]s.
//!
//! Three transports implement the surface: the process backend's pipes and
//! any other byte stream through [`StreamSink`]/[`StreamSource`], TCP
//! sockets through [`TcpAcceptor`]/[`tcp_connect`] (std::net only), and the
//! deterministic in-memory loopback of `grasp-net`'s test harness.  Master
//! loops are written once against the traits and cannot tell the
//! difference — which is the point: the fault-injection tests drive the
//! *same* master code the TCP deployment runs.

use crate::error::GraspError;
use crate::wire::{read_frame_into, FrameView, WireMsg};
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

fn transport_err(detail: impl Into<String>) -> GraspError {
    GraspError::WireProtocol {
        detail: detail.into(),
    }
}

/// The sending half of a framed connection.
///
/// Sends are ordered and complete (a frame is never partially written on a
/// healthy transport).  Dropping the sink closes the outbound direction;
/// the peer observes EOF after draining what was already sent — that close
/// *is* the protocol's shutdown signal for demoted workers, so every
/// implementation must make drop visible to the peer.
pub trait FrameSink: Send {
    /// Encode and write one frame; returns the bytes put on the wire.
    /// An error means the peer is unreachable — the caller treats the
    /// connection as closed (the receive side settles the peer's fate).
    /// Implementations reuse an internal encode buffer, so steady-state
    /// sends allocate nothing.
    fn send(&mut self, msg: &WireMsg) -> Result<usize, GraspError>;

    /// Write one already-encoded frame (the writer-thread fast path, which
    /// encodes into its own reused buffer).  One call is one frame — the
    /// loopback transport's fault scripts index frames by `send_frame`
    /// call, so callers must never batch two frames into one call.
    fn send_frame(&mut self, frame: &[u8]) -> Result<usize, GraspError>;

    /// Install a counter credited with every payload byte this sink has to
    /// *copy* beyond the single encode (wire-copy accounting; zero on
    /// transports that write straight from the encode buffer).
    fn set_copy_counter(&mut self, _counter: Arc<AtomicU64>) {}
}

/// The receiving half of a framed connection.
pub trait FrameSource: Send {
    /// Block until one frame arrives and borrow it from the source's
    /// internal read buffer — the zero-copy receive path.  `Ok(None)` is
    /// the peer's clean close (between frames); a close mid-frame or a
    /// corrupted frame is a typed [`GraspError::WireProtocol`].  The view
    /// is valid until the next call on this source; implementations reuse
    /// one read buffer across frames, so steady-state receives allocate
    /// nothing.
    fn recv_view(&mut self) -> Result<Option<FrameView<'_>>, GraspError>;

    /// Block until one frame arrives, copied into an owned [`WireMsg`]
    /// (convenience over [`FrameSource::recv_view`]; only the
    /// heap-carrying variants allocate in the copy).
    fn recv(&mut self) -> Result<Option<WireMsg>, GraspError> {
        Ok(self.recv_view()?.map(|v| v.to_owned()))
    }

    /// Install a counter credited with every raw inbound byte (wire
    /// accounting).  Transports without byte-level visibility may ignore it.
    fn set_byte_counter(&mut self, _counter: Arc<AtomicU64>) {}
}

/// One established, handshake-ready connection: a peer label plus both
/// framed halves.  Masters [`FramedConnection::split`] it so a reader
/// thread can own the source while a writer thread owns the sink.
pub struct FramedConnection {
    peer: String,
    sink: Box<dyn FrameSink>,
    source: Box<dyn FrameSource>,
}

impl std::fmt::Debug for FramedConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FramedConnection")
            .field("peer", &self.peer)
            .finish_non_exhaustive()
    }
}

impl FramedConnection {
    /// Assemble a connection from its halves.
    pub fn new(
        peer: impl Into<String>,
        sink: Box<dyn FrameSink>,
        source: Box<dyn FrameSource>,
    ) -> Self {
        FramedConnection {
            peer: peer.into(),
            sink,
            source,
        }
    }

    /// Human-readable peer label (an address for sockets, a symbolic name
    /// for pipes and loopback links).
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Send one frame (handshake convenience; steady-state traffic usually
    /// goes through a writer thread after [`FramedConnection::split`]).
    pub fn send(&mut self, msg: &WireMsg) -> Result<usize, GraspError> {
        self.sink.send(msg)
    }

    /// Receive one frame (handshake convenience).
    pub fn recv(&mut self) -> Result<Option<WireMsg>, GraspError> {
        self.source.recv()
    }

    /// Split into the independently owned halves.
    pub fn split(self) -> (Box<dyn FrameSink>, Box<dyn FrameSource>) {
        (self.sink, self.source)
    }
}

/// Where new peers register: masters poll it from a dedicated thread.
pub trait Acceptor: Send {
    /// Return the next fully connected (but not yet handshaken) peer, or
    /// `Ok(None)` when nobody is waiting right now.  Must not block, so the
    /// polling thread stays responsive to shutdown.
    fn poll_accept(&mut self) -> Result<Option<FramedConnection>, GraspError>;

    /// The endpoint workers should connect to (an address for sockets, a
    /// symbolic label otherwise).
    fn endpoint(&self) -> String;
}

// ---------------------------------------------------------------------------
// byte-stream transport (pipes, and the building block for sockets)
// ---------------------------------------------------------------------------

/// [`FrameSink`] over any ordered byte writer (a pipe, a socket half, an
/// in-memory buffer in tests).  One encode buffer is reused across sends.
pub struct StreamSink<W: Write + Send> {
    inner: W,
    frame: Vec<u8>,
}

impl<W: Write + Send> StreamSink<W> {
    /// Wrap a writer.
    pub fn new(inner: W) -> Self {
        StreamSink {
            inner,
            frame: Vec::new(),
        }
    }
}

impl<W: Write + Send> FrameSink for StreamSink<W> {
    fn send(&mut self, msg: &WireMsg) -> Result<usize, GraspError> {
        let mut frame = std::mem::take(&mut self.frame);
        msg.encode_into(&mut frame);
        let sent = self.send_frame(&frame);
        self.frame = frame;
        sent
    }

    fn send_frame(&mut self, frame: &[u8]) -> Result<usize, GraspError> {
        self.inner
            .write_all(frame)
            .and_then(|_| self.inner.flush())
            .map_err(|e| transport_err(format!("transport write failed: {e}")))?;
        Ok(frame.len())
    }
}

struct CountingRead<R> {
    inner: R,
    count: Option<Arc<AtomicU64>>,
}

impl<R: Read> Read for CountingRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if let Some(c) = &self.count {
            c.fetch_add(n as u64, Ordering::Relaxed);
        }
        Ok(n)
    }
}

/// [`FrameSource`] over any ordered byte reader, buffered, with optional
/// byte accounting.  One frame buffer is reused across receives: after
/// warmup there are zero heap allocations per frame.
pub struct StreamSource<R: Read + Send> {
    inner: BufReader<CountingRead<R>>,
    frame: Vec<u8>,
}

impl<R: Read + Send> StreamSource<R> {
    /// Wrap a reader.
    pub fn new(inner: R) -> Self {
        StreamSource {
            inner: BufReader::new(CountingRead { inner, count: None }),
            frame: Vec::new(),
        }
    }
}

impl<R: Read + Send> FrameSource for StreamSource<R> {
    fn recv_view(&mut self) -> Result<Option<FrameView<'_>>, GraspError> {
        match read_frame_into(&mut self.inner, &mut self.frame)? {
            None => Ok(None),
            Some(n) => Ok(Some(FrameView::decode_slice(&self.frame[..n])?.0)),
        }
    }

    fn set_byte_counter(&mut self, counter: Arc<AtomicU64>) {
        self.inner.get_mut().count = Some(counter);
    }
}

/// Build a pipe-style connection from a write half and a read half (how the
/// process backend wraps a child's stdin/stdout).
pub fn stream_connection<W, R>(peer: impl Into<String>, writer: W, reader: R) -> FramedConnection
where
    W: Write + Send + 'static,
    R: Read + Send + 'static,
{
    FramedConnection::new(
        peer,
        Box::new(StreamSink::new(writer)),
        Box::new(StreamSource::new(reader)),
    )
}

// ---------------------------------------------------------------------------
// TCP transport (std::net only)
// ---------------------------------------------------------------------------

/// [`FrameSink`] over the write half of a TCP stream.  Dropping it shuts
/// down the socket's write direction explicitly — with `try_clone`d handles
/// a plain drop would leave the kernel socket open through the read-half
/// clone, and the peer would never see the EOF that means "shutdown".
pub struct TcpSink {
    stream: TcpStream,
    frame: Vec<u8>,
}

impl FrameSink for TcpSink {
    fn send(&mut self, msg: &WireMsg) -> Result<usize, GraspError> {
        let mut frame = std::mem::take(&mut self.frame);
        msg.encode_into(&mut frame);
        let sent = self.send_frame(&frame);
        self.frame = frame;
        sent
    }

    fn send_frame(&mut self, frame: &[u8]) -> Result<usize, GraspError> {
        self.stream
            .write_all(frame)
            .and_then(|_| self.stream.flush())
            .map_err(|e| transport_err(format!("socket write failed: {e}")))?;
        Ok(frame.len())
    }
}

impl Drop for TcpSink {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Write);
    }
}

/// Wrap an established TCP stream as a [`FramedConnection`] (both ends use
/// this: the master on accepted streams, workers on connected ones).
pub fn tcp_connection(stream: TcpStream) -> Result<FramedConnection, GraspError> {
    // Frames are small and latency-sensitive (a heartbeat late by a Nagle
    // delay looks like a dying worker).
    let _ = stream.set_nodelay(true);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "tcp-peer".into());
    let read_half = stream
        .try_clone()
        .map_err(|e| transport_err(format!("could not clone socket: {e}")))?;
    Ok(FramedConnection::new(
        peer,
        Box::new(TcpSink {
            stream,
            frame: Vec::new(),
        }),
        Box::new(StreamSource::new(read_half)),
    ))
}

/// Connect to a listening master at `addr`.
pub fn tcp_connect(addr: impl ToSocketAddrs) -> Result<FramedConnection, GraspError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| transport_err(format!("could not connect to master: {e}")))?;
    tcp_connection(stream)
}

/// A non-blocking [`Acceptor`] over a bound TCP listener.
pub struct TcpAcceptor {
    listener: TcpListener,
    local: SocketAddr,
}

impl TcpAcceptor {
    /// Bind `addr` (use port 0 for an OS-assigned port; the actual endpoint
    /// is [`TcpAcceptor::endpoint`]).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self, GraspError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| transport_err(format!("could not bind listener: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| transport_err(format!("could not configure listener: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| transport_err(format!("listener has no local address: {e}")))?;
        Ok(TcpAcceptor { listener, local })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Acceptor for TcpAcceptor {
    fn poll_accept(&mut self) -> Result<Option<FramedConnection>, GraspError> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                // The listener is non-blocking; the accepted stream must not
                // inherit that (frame reads are blocking by contract).
                stream
                    .set_nonblocking(false)
                    .map_err(|e| transport_err(format!("could not configure socket: {e}")))?;
                Ok(Some(tcp_connection(stream)?))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(transport_err(format!("accept failed: {e}"))),
        }
    }

    fn endpoint(&self) -> String {
        self.local.to_string()
    }
}

// ---------------------------------------------------------------------------
// shared writer-thread plumbing
// ---------------------------------------------------------------------------

/// Shared wire-accounting counters one master hands to every per-worker
/// writer thread (and to each source's byte counter): bytes on the wire,
/// encode wall time, write wall time, and payload bytes copied beyond the
/// single encode.
#[derive(Debug, Clone, Default)]
pub struct WireCounters {
    /// Bytes of frames put on the wire.
    pub bytes: Arc<AtomicU64>,
    /// Wall nanoseconds writer threads spent encoding frames.
    pub encode_nanos: Arc<AtomicU64>,
    /// Wall nanoseconds writer threads spent writing encoded frames.
    pub write_nanos: Arc<AtomicU64>,
    /// Payload bytes the send path had to copy beyond the single encode
    /// (zero on transports that write straight from the encode buffer; the
    /// in-memory loopback's channel hand-off counts here).
    pub copied: Arc<AtomicU64>,
}

impl WireCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        WireCounters::default()
    }

    /// Seconds spent encoding frames so far.
    pub fn encode_seconds(&self) -> f64 {
        self.encode_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Seconds spent writing frames so far.
    pub fn write_seconds(&self) -> f64 {
        self.write_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }
}

/// One outbound message for a writer thread: either an owned protocol
/// message, or the task-dispatch fast path whose payload is a shared
/// reference-counted slice — the master clones an `Arc` per dispatch, never
/// the payload bytes (they are copied exactly once, into the writer's
/// reused encode buffer).
#[derive(Debug, Clone)]
pub enum OutMsg {
    /// An owned protocol message.
    Msg(WireMsg),
    /// A task dispatch sharing its payload bytes.
    Task {
        /// Global unit id within the running skeleton.
        unit_id: u64,
        /// Declared work of the unit.
        work: f64,
        /// Payload kind.
        kind: u32,
        /// Kind-specific serialized task, shared across dispatch attempts.
        payload: Arc<[u8]>,
    },
}

impl OutMsg {
    /// A spin-kernel task dispatch: no payload bytes, so the owned variant
    /// is already copy-free (an empty `Vec` does not allocate).
    pub fn spin_task(unit_id: u64, work: f64) -> OutMsg {
        OutMsg::Msg(WireMsg::Task {
            unit_id,
            work,
            kind: crate::wire::PAYLOAD_SPIN,
            payload: Vec::new(),
        })
    }

    /// Borrow as a [`FrameView`] for encoding (both variants encode
    /// byte-identically to the equivalent [`WireMsg`]).
    pub fn as_view(&self) -> FrameView<'_> {
        match self {
            OutMsg::Msg(m) => m.as_view(),
            OutMsg::Task {
                unit_id,
                work,
                kind,
                payload,
            } => FrameView::Task {
                unit_id: *unit_id,
                work: *work,
                kind: *kind,
                payload,
            },
        }
    }
}

impl From<WireMsg> for OutMsg {
    fn from(msg: WireMsg) -> Self {
        OutMsg::Msg(msg)
    }
}

/// Spawn the writer thread owning `sink`: frames sent on the returned
/// channel are written in order; dropping the sender drops the sink, which
/// closes the outbound direction (EOF at the peer).
///
/// Masters never write from their event loop — a worker only reads between
/// tasks, so a blocking write into a full transport would stall the very
/// loop whose heartbeat sweep is supposed to unmask wedged workers.  The
/// thread encodes every message into one buffer reused across frames
/// (steady state allocates nothing) and credits `counters` with bytes sent
/// plus encode and write wall time, kept separate so callers can tell
/// serialization cost from transport cost.
pub fn spawn_frame_writer(
    mut sink: Box<dyn FrameSink>,
    counters: WireCounters,
) -> mpsc::Sender<OutMsg> {
    sink.set_copy_counter(Arc::clone(&counters.copied));
    let (tx, rx) = mpsc::channel::<OutMsg>();
    std::thread::spawn(move || {
        let mut frame = Vec::new();
        for out in rx {
            let t0 = Instant::now();
            out.as_view().encode_into(&mut frame);
            counters
                .encode_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let t1 = Instant::now();
            match sink.send_frame(&frame) {
                Ok(n) => {
                    counters.bytes.fetch_add(n as u64, Ordering::Relaxed);
                    counters
                        .write_nanos
                        .fetch_add(t1.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                Err(_) => {
                    // Peer gone: drop queued frames; the receive side (EOF /
                    // heartbeat timeout) settles the peer's fate.
                    return;
                }
            }
        }
    });
    tx
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stream_halves_round_trip_frames_and_count_bytes() {
        let mut sink = StreamSink::new(Vec::<u8>::new());
        let msgs = [
            WireMsg::Hello { pid: 1 },
            WireMsg::Task {
                unit_id: 9,
                work: 2.0,
                kind: crate::wire::PAYLOAD_SPIN,
                payload: vec![1, 2, 3],
            },
            WireMsg::Shutdown,
        ];
        let mut sent = 0;
        for m in &msgs {
            sent += sink.send(m).unwrap();
        }
        let bytes = sink.inner;
        assert_eq!(sent, bytes.len());

        let counter = Arc::new(AtomicU64::new(0));
        let mut source = StreamSource::new(bytes.as_slice());
        source.set_byte_counter(Arc::clone(&counter));
        for m in &msgs {
            assert_eq!(source.recv().unwrap().as_ref(), Some(m));
        }
        assert_eq!(source.recv().unwrap(), None, "clean EOF between frames");
        assert_eq!(counter.load(Ordering::Relaxed), bytes.len() as u64);
    }

    #[test]
    fn tcp_acceptor_is_non_blocking_and_carries_frames() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        assert!(
            acceptor.poll_accept().unwrap().is_none(),
            "no pending peer must not block"
        );
        let endpoint = acceptor.endpoint();
        let client = std::thread::spawn(move || {
            let mut conn = tcp_connect(&endpoint).unwrap();
            conn.send(&WireMsg::Join {
                pid: 7,
                wire_version: crate::wire::WIRE_VERSION as u32,
                capabilities: crate::wire::CAP_ALL,
            })
            .unwrap();
            match conn.recv().unwrap() {
                Some(WireMsg::Welcome { worker_id, .. }) => worker_id,
                other => panic!("expected Welcome, got {other:?}"),
            }
        });
        let mut server = loop {
            if let Some(conn) = acceptor.poll_accept().unwrap() {
                break conn;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        match server.recv().unwrap() {
            Some(WireMsg::Join { pid, .. }) => assert_eq!(pid, 7),
            other => panic!("expected Join, got {other:?}"),
        }
        server
            .send(&WireMsg::Welcome {
                worker_id: 42,
                heartbeat_interval_s: 0.0,
                spin_per_work_unit: 1,
            })
            .unwrap();
        assert_eq!(client.join().unwrap(), 42);
        // Dropping the server connection shuts the socket down: the next
        // read on a fresh peer of the (now closed) connection sees EOF.
        drop(server);
    }

    #[test]
    fn dropping_a_tcp_sink_delivers_eof_to_the_peer() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let endpoint = acceptor.endpoint();
        let peer = std::thread::spawn(move || {
            let mut conn = tcp_connect(&endpoint).unwrap();
            conn.recv().unwrap() // blocks until the master closes
        });
        let conn = loop {
            if let Some(c) = acceptor.poll_accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        let (sink, _source) = conn.split();
        drop(sink); // explicit write-shutdown, despite the live read clone
        assert_eq!(peer.join().unwrap(), None, "peer sees a clean EOF");
    }

    #[test]
    fn writer_thread_accounts_frames_and_closes_on_drop() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let endpoint = acceptor.endpoint();
        let peer = std::thread::spawn(move || {
            let mut conn = tcp_connect(&endpoint).unwrap();
            let mut got = Vec::new();
            while let Some(m) = conn.recv().unwrap() {
                got.push(m);
            }
            got
        });
        let conn = loop {
            if let Some(c) = acceptor.poll_accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        let (sink, _source) = conn.split();
        let counters = WireCounters::new();
        let tx = spawn_frame_writer(sink, counters.clone());
        let sent = [WireMsg::Heartbeat, WireMsg::Shutdown];
        for m in &sent {
            tx.send(m.clone().into()).unwrap();
        }
        drop(tx);
        let got = peer.join().unwrap();
        assert_eq!(got, sent);
        let expected: usize = sent.iter().map(|m| m.encode().len()).sum();
        assert_eq!(counters.bytes.load(Ordering::Relaxed), expected as u64);
        assert_eq!(
            counters.copied.load(Ordering::Relaxed),
            0,
            "a TCP sink writes straight from the encode buffer"
        );
    }

    #[test]
    fn out_msg_task_encodes_identically_to_the_owned_message() {
        let payload: Arc<[u8]> = vec![7u8; 48].into();
        let out = OutMsg::Task {
            unit_id: 3,
            work: 1.5,
            kind: crate::wire::PAYLOAD_MATMUL,
            payload: Arc::clone(&payload),
        };
        let owned = WireMsg::Task {
            unit_id: 3,
            work: 1.5,
            kind: crate::wire::PAYLOAD_MATMUL,
            payload: payload.to_vec(),
        };
        let mut frame = Vec::new();
        out.as_view().encode_into(&mut frame);
        assert_eq!(frame, owned.encode());
    }
}
