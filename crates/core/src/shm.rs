//! Same-host shared-memory ring transport.
//!
//! The fourth [`crate::transport`] implementation: a pair of single-producer
//! single-consumer byte rings backed by one tmpfs file (`/dev/shm` on
//! Linux), one ring per direction.  A master creates the file before
//! spawning the worker process; both sides then move frames through the
//! rings with positioned reads and writes (`FileExt::read_at`/`write_at`) —
//! on tmpfs these are memory-speed page-cache copies, no disk I/O and no
//! per-frame pipe or socket syscall queueing.  The implementation is
//! entirely safe code (no `mmap`, no raw pointers), which the crate's
//! `deny(unsafe_code)` policy requires.
//!
//! ## File layout
//!
//! ```text
//! offset  0  magic "GRSPSHM1"
//!         8  ring capacity per direction (u64 LE)
//!        16  master pid          24  worker pid (0 until attach)
//!        32  master closed flag  40  worker closed flag
//!        48  M→W head (worker-written)   56  M→W tail (master-written)
//!        64  W→M head (master-written)   72  W→M tail (worker-written)
//!      4096  M→W data ring (capacity bytes)
//! 4096+cap  W→M data ring (capacity bytes)
//! ```
//!
//! Head and tail are free-running `u64` byte counters (never wrapped), so
//! `tail - head` is the number of unread bytes and the empty/full states
//! are unambiguous.  Each side writes only its own fields: the producer
//! advances the tail after the data lands, the consumer advances the head
//! after copying data out, and each positioned write is a syscall — a full
//! memory barrier — so the peer can never observe a tail beyond valid data.
//!
//! ## Death detection
//!
//! Pipes and TCP get end-of-file from the kernel for free; a shared file
//! has no such signal, so liveness is explicit, in three layers: a clean
//! close sets the side's *closed flag* (the `Drop` of [`ShmSink`]), which
//! the peer reads as EOF once the ring drains; a SIGKILLed peer never sets
//! its flag, so the receive loop also checks that the peer pid still exists
//! (`/proc/<pid>`); and the master's ordinary heartbeat-timeout sweep
//! remains the backstop for a wedged-but-alive peer, exactly as on the
//! other transports.  An EOF observed mid-frame is the same typed
//! truncation error every transport reports.

use crate::error::GraspError;
use crate::transport::{FrameSink, FrameSource};
use crate::wire::{FrameView, MAX_FRAME_PAYLOAD, WIRE_MAGIC, WIRE_VERSION};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHM_MAGIC: [u8; 8] = *b"GRSPSHM1";
const OFF_MAGIC: u64 = 0;
const OFF_CAPACITY: u64 = 8;
const OFF_PID: [u64; 2] = [16, 24]; // [master, worker]
const OFF_CLOSED: [u64; 2] = [32, 40];
const OFF_HEAD: [u64; 2] = [48, 64]; // per ring: [M→W, W→M]
const OFF_TAIL: [u64; 2] = [56, 72];
const HEADER_LEN: u64 = 4096;

/// Default per-direction ring capacity.
pub const DEFAULT_RING_CAPACITY: u64 = 1 << 20;

/// Which end of the ring pair this process is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Master,
    Worker,
}

impl Side {
    fn index(self) -> usize {
        match self {
            Side::Master => 0,
            Side::Worker => 1,
        }
    }

    fn peer(self) -> Side {
        match self {
            Side::Master => Side::Worker,
            Side::Worker => Side::Master,
        }
    }

    /// Ring index this side produces into (master produces M→W).
    fn out_ring(self) -> usize {
        self.index()
    }

    /// Ring index this side consumes from.
    fn in_ring(self) -> usize {
        self.peer().index()
    }
}

fn shm_err(detail: impl Into<String>) -> GraspError {
    GraspError::WireProtocol {
        detail: detail.into(),
    }
}

fn io_err(what: &str, e: std::io::Error) -> GraspError {
    shm_err(format!("shm ring {what} failed: {e}"))
}

/// Shared state of one attached ring file: the open file plus this side's
/// identity.  Sink and source halves of one side share it.
#[derive(Debug)]
struct ShmShared {
    file: File,
    side: Side,
    capacity: u64,
}

impl ShmShared {
    fn read_u64(&self, off: u64) -> Result<u64, GraspError> {
        let mut b = [0u8; 8];
        self.file
            .read_exact_at(&mut b, off)
            .map_err(|e| io_err("header read", e))?;
        Ok(u64::from_le_bytes(b))
    }

    fn write_u64(&self, off: u64, v: u64) -> Result<(), GraspError> {
        self.file
            .write_all_at(&v.to_le_bytes(), off)
            .map_err(|e| io_err("header write", e))
    }

    fn data_base(&self, ring: usize) -> u64 {
        HEADER_LEN + ring as u64 * self.capacity
    }

    /// `true` while the peer can still make progress: its closed flag is
    /// unset and (once it has registered a pid) its process still exists.
    fn peer_alive(&self, peer_pid_hint: u64) -> Result<bool, GraspError> {
        let peer = self.side.peer();
        if self.read_u64(OFF_CLOSED[peer.index()])? != 0 {
            return Ok(false);
        }
        let pid = match self.read_u64(OFF_PID[peer.index()])? {
            0 => peer_pid_hint, // peer not yet attached; fall back to spawn-time knowledge
            p => p,
        };
        if pid == 0 {
            return Ok(true); // nothing to check against yet
        }
        let proc_dir = PathBuf::from(format!("/proc/{pid}"));
        if Path::new("/proc").exists() {
            Ok(proc_dir.exists())
        } else {
            Ok(true) // no procfs: rely on closed flags + heartbeat sweep
        }
    }
}

/// One side's handle on a ring file, from which the framed halves are
/// taken.  Create the file with [`ShmRing::create`] (master, before
/// spawning the worker), attach with [`ShmRing::attach`] (worker).
#[derive(Debug)]
pub struct ShmRing {
    shared: Arc<ShmShared>,
    path: PathBuf,
}

impl ShmRing {
    /// Create and initialise a ring file at `path` with the given
    /// per-direction capacity, registering the calling process as the
    /// master side.  The file must not already exist as a valid ring (it is
    /// truncated).
    pub fn create(path: impl Into<PathBuf>, capacity: u64) -> Result<ShmRing, GraspError> {
        let path = path.into();
        let capacity = capacity.max(4096);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create", e))?;
        file.set_len(HEADER_LEN + 2 * capacity)
            .map_err(|e| io_err("size", e))?;
        let shared = ShmShared {
            file,
            side: Side::Master,
            capacity,
        };
        shared
            .file
            .write_all_at(&SHM_MAGIC, OFF_MAGIC)
            .map_err(|e| io_err("init", e))?;
        shared.write_u64(OFF_CAPACITY, capacity)?;
        shared.write_u64(OFF_PID[0], std::process::id() as u64)?;
        Ok(ShmRing {
            shared: Arc::new(shared),
            path,
        })
    }

    /// Attach to an existing ring file as the worker side, registering this
    /// process id so the master can watch for its death.
    pub fn attach(path: impl Into<PathBuf>) -> Result<ShmRing, GraspError> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open", e))?;
        let mut magic = [0u8; 8];
        file.read_exact_at(&mut magic, OFF_MAGIC)
            .map_err(|e| io_err("magic read", e))?;
        if magic != SHM_MAGIC {
            return Err(shm_err(format!("bad shm ring magic {magic:02x?}")));
        }
        let probe = ShmShared {
            file,
            side: Side::Worker,
            capacity: 0,
        };
        let capacity = probe.read_u64(OFF_CAPACITY)?;
        if capacity == 0 || capacity > (1 << 32) {
            return Err(shm_err(format!("implausible shm ring capacity {capacity}")));
        }
        let shared = ShmShared { capacity, ..probe };
        shared.write_u64(OFF_PID[1], std::process::id() as u64)?;
        Ok(ShmRing {
            shared: Arc::new(shared),
            path,
        })
    }

    /// The ring file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Split into the framed halves.  `peer_pid_hint` is the peer process
    /// id if the caller already knows it (the master knows the child pid at
    /// spawn time — before the worker attaches and registers itself);
    /// pass 0 otherwise.
    pub fn into_halves(self, peer_pid_hint: u64) -> (ShmSink, ShmSource) {
        let sink = ShmSink {
            shared: Arc::clone(&self.shared),
            tail: 0,
            frame: Vec::new(),
            peer_pid_hint,
        };
        let source = ShmSource {
            shared: self.shared,
            head: 0,
            frame: Vec::new(),
            bytes: None,
            peer_pid_hint,
        };
        (sink, source)
    }

    /// Remove a ring file, ignoring errors (open handles keep working; this
    /// just unlinks the name so tmpfs space is reclaimed when both sides
    /// exit).
    pub fn cleanup(path: impl AsRef<Path>) {
        let _ = std::fs::remove_file(path);
    }
}

/// How long the blocking loops sleep between polls once the quick
/// spin-yield phase found nothing.
const POLL_SLEEP: Duration = Duration::from_micros(200);

/// Poll iterations between peer-liveness checks (each check stats
/// `/proc/<pid>`; at the poll cadence this bounds death detection latency
/// to ~10 ms without paying a stat per poll).
const LIVENESS_EVERY: u32 = 50;

/// The sending half of a shared-memory ring.  Dropping it sets this side's
/// closed flag — the peer reads EOF once the ring drains, exactly like a
/// dropped pipe or socket write half.
#[derive(Debug)]
pub struct ShmSink {
    shared: Arc<ShmShared>,
    /// Cached free-running producer position (only this side writes it).
    tail: u64,
    frame: Vec<u8>,
    peer_pid_hint: u64,
}

impl FrameSink for ShmSink {
    fn send(&mut self, msg: &crate::wire::WireMsg) -> Result<usize, GraspError> {
        let mut frame = std::mem::take(&mut self.frame);
        msg.encode_into(&mut frame);
        let sent = self.send_frame(&frame);
        self.frame = frame;
        sent
    }

    fn send_frame(&mut self, frame: &[u8]) -> Result<usize, GraspError> {
        let cap = self.shared.capacity;
        let n = frame.len() as u64;
        if n > cap {
            return Err(shm_err(format!(
                "frame of {n} bytes exceeds the ring capacity of {cap}"
            )));
        }
        let ring = self.shared.side.out_ring();
        let mut polls: u32 = 0;
        loop {
            let head = self.shared.read_u64(OFF_HEAD[ring])?;
            let used = self.tail.wrapping_sub(head);
            if used > cap {
                return Err(shm_err("corrupt shm ring: consumer ahead of producer"));
            }
            if cap - used >= n {
                break;
            }
            polls = polls.wrapping_add(1);
            if polls % LIVENESS_EVERY == 0 && !self.shared.peer_alive(self.peer_pid_hint)? {
                return Err(shm_err("shm ring peer gone with the ring full"));
            }
            std::thread::sleep(POLL_SLEEP);
        }
        let base = self.shared.data_base(ring);
        let at = self.tail % cap;
        let first = ((cap - at) as usize).min(frame.len());
        self.shared
            .file
            .write_all_at(&frame[..first], base + at)
            .map_err(|e| io_err("data write", e))?;
        if first < frame.len() {
            self.shared
                .file
                .write_all_at(&frame[first..], base)
                .map_err(|e| io_err("data write", e))?;
        }
        self.tail += n;
        self.shared.write_u64(OFF_TAIL[ring], self.tail)?;
        Ok(frame.len())
    }
}

impl Drop for ShmSink {
    fn drop(&mut self) {
        // A clean close: the peer sees EOF once it drains the ring.
        let _ = self
            .shared
            .write_u64(OFF_CLOSED[self.shared.side.index()], 1);
    }
}

/// The receiving half of a shared-memory ring.  One frame buffer is reused
/// across receives.
#[derive(Debug)]
pub struct ShmSource {
    shared: Arc<ShmShared>,
    /// Cached free-running consumer position (only this side writes it).
    head: u64,
    frame: Vec<u8>,
    bytes: Option<Arc<AtomicU64>>,
    peer_pid_hint: u64,
}

impl ShmSource {
    /// Copy exactly `out.len()` bytes from the ring, blocking until they
    /// arrive.  Returns `Ok(false)` — without consuming anything — when the
    /// peer is gone and the ring holds fewer than `out.len()` bytes while
    /// `at_boundary` is set and nothing of the current frame has been read
    /// yet; the same condition mid-frame is a typed truncation error.
    fn read_exact_ring(&mut self, out: &mut [u8], at_boundary: bool) -> Result<bool, GraspError> {
        let cap = self.shared.capacity;
        let ring = self.shared.side.in_ring();
        let mut filled = 0usize;
        let mut polls: u32 = 0;
        while filled < out.len() {
            let tail = self.shared.read_u64(OFF_TAIL[ring])?;
            let avail = tail.wrapping_sub(self.head);
            if avail > cap {
                return Err(shm_err("corrupt shm ring: producer overran the consumer"));
            }
            if avail == 0 {
                polls = polls.wrapping_add(1);
                if polls % LIVENESS_EVERY == 0 && !self.shared.peer_alive(self.peer_pid_hint)? {
                    // Nothing buffered and the peer is gone for good.
                    if at_boundary && filled == 0 {
                        return Ok(false);
                    }
                    return Err(shm_err("truncated frame: peer closed mid-message"));
                }
                std::thread::sleep(POLL_SLEEP);
                continue;
            }
            let take = (avail as usize).min(out.len() - filled);
            let base = self.shared.data_base(ring);
            let at = self.head % cap;
            let first = ((cap - at) as usize).min(take);
            self.shared
                .file
                .read_exact_at(&mut out[filled..filled + first], base + at)
                .map_err(|e| io_err("data read", e))?;
            if first < take {
                self.shared
                    .file
                    .read_exact_at(&mut out[filled + first..filled + take], base)
                    .map_err(|e| io_err("data read", e))?;
            }
            filled += take;
            self.head += take as u64;
            self.shared.write_u64(OFF_HEAD[ring], self.head)?;
            if let Some(b) = &self.bytes {
                b.fetch_add(take as u64, Ordering::Relaxed);
            }
        }
        Ok(true)
    }
}

impl FrameSource for ShmSource {
    fn recv_view(&mut self) -> Result<Option<FrameView<'_>>, GraspError> {
        let mut header = [0u8; 10];
        if !self.read_exact_ring(&mut header, true)? {
            return Ok(None); // clean EOF between frames
        }
        if header[..4] != WIRE_MAGIC {
            return Err(shm_err(format!("bad frame magic {:02x?}", &header[..4])));
        }
        if header[4] != WIRE_VERSION {
            return Err(shm_err(format!(
                "wire version mismatch: got {}, speak {WIRE_VERSION}",
                header[4]
            )));
        }
        let len = u32::from_le_bytes(header[6..10].try_into().unwrap()) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(shm_err(format!(
                "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD} cap"
            )));
        }
        let total = 10 + len + 4;
        self.frame.clear();
        self.frame.resize(total, 0);
        self.frame[..10].copy_from_slice(&header);
        let mut rest = std::mem::take(&mut self.frame);
        let read = self.read_exact_ring(&mut rest[10..], false);
        self.frame = rest;
        read?;
        Ok(Some(FrameView::decode_slice(&self.frame[..total])?.0))
    }

    fn set_byte_counter(&mut self, counter: Arc<AtomicU64>) {
        self.bytes = Some(counter);
    }
}

/// Pick a ring-file path on tmpfs: `/dev/shm` when present (Linux),
/// otherwise the system temp directory.  `tag` keeps concurrent masters
/// and workers apart; the master pid makes leaked files attributable.
pub fn ring_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = if Path::new("/dev/shm").is_dir() {
        PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("grasp-ring-{}-{tag}-{seq}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireMsg;

    fn pair(capacity: u64) -> ((ShmSink, ShmSource), (ShmSink, ShmSource), PathBuf) {
        let path = ring_path("test");
        let master = ShmRing::create(&path, capacity).unwrap();
        let worker = ShmRing::attach(&path).unwrap();
        let me = std::process::id() as u64;
        (master.into_halves(me), worker.into_halves(me), path)
    }

    #[test]
    fn frames_cross_the_ring_in_both_directions() {
        let ((mut m_sink, mut m_src), (mut w_sink, mut w_src), path) = pair(1 << 16);
        let task = WireMsg::Task {
            unit_id: 5,
            work: 2.0,
            kind: 1,
            payload: vec![3; 300],
        };
        m_sink.send(&task).unwrap();
        assert_eq!(w_src.recv().unwrap(), Some(task));
        let done = WireMsg::Done {
            unit_id: 5,
            elapsed_s: 0.25,
            digest: 42,
        };
        w_sink.send(&done).unwrap();
        assert_eq!(m_src.recv().unwrap(), Some(done));
        ShmRing::cleanup(path);
    }

    #[test]
    fn many_frames_wrap_a_small_ring_without_corruption() {
        // Capacity clamps at 4096; frames of ~330 bytes force many wraps.
        let ((m_sink, _m_src), (_w_sink, mut w_src), path) = pair(0);
        let msgs: Vec<WireMsg> = (0..200)
            .map(|i| WireMsg::Task {
                unit_id: i,
                work: i as f64,
                kind: 2,
                payload: vec![i as u8; 300],
            })
            .collect();
        let expected = msgs.clone();
        let producer = std::thread::spawn(move || {
            let mut sink = m_sink;
            for m in &msgs {
                sink.send(m).unwrap();
            }
        });
        for want in &expected {
            assert_eq!(w_src.recv().unwrap().as_ref(), Some(want));
        }
        producer.join().unwrap();
        ShmRing::cleanup(path);
    }

    #[test]
    fn dropping_the_sink_reads_as_clean_eof_after_the_ring_drains() {
        let ((mut m_sink, _m_src), (_w_sink, mut w_src), path) = pair(1 << 16);
        m_sink.send(&WireMsg::Heartbeat).unwrap();
        drop(m_sink);
        assert_eq!(w_src.recv().unwrap(), Some(WireMsg::Heartbeat));
        assert_eq!(w_src.recv().unwrap(), None, "closed flag is a clean EOF");
        ShmRing::cleanup(path);
    }

    #[test]
    fn a_torn_frame_is_a_typed_truncation_error() {
        let ((mut m_sink, _m_src), (_w_sink, mut w_src), path) = pair(1 << 16);
        let frame = WireMsg::Done {
            unit_id: 1,
            elapsed_s: 1.0,
            digest: 7,
        }
        .encode();
        // Write only part of the frame, then close.
        m_sink.send_frame(&frame[..frame.len() - 3]).unwrap();
        drop(m_sink);
        let err = w_src.recv().expect_err("mid-frame close must be typed");
        assert!(err.to_string().contains("wire protocol"), "{err}");
        ShmRing::cleanup(path);
    }

    #[test]
    fn oversized_frames_are_rejected_against_the_capacity() {
        let ((mut m_sink, _m_src), _worker, path) = pair(0);
        let big = vec![0u8; 5000];
        let err = m_sink.send_frame(&big).unwrap_err();
        assert!(err.to_string().contains("capacity"), "{err}");
        ShmRing::cleanup(path);
    }
}
