//! Execution metrics: speedup, efficiency, and throughput timelines.
//!
//! These are the quantities the evaluation plots: completion time against a
//! sequential or single-node reference, efficiency against the aggregate
//! capacity actually allocated, and throughput over time (which is how the
//! adaptation-response figures visualise a load spike being absorbed).

use gridsim::SimTime;
use serde::{Deserialize, Serialize};

/// Classic speedup: reference (e.g. sequential or non-adaptive) time divided
/// by the measured time.  Returns 0 when the measured time is non-positive.
pub fn speedup(reference_time: f64, measured_time: f64) -> f64 {
    if measured_time <= 0.0 {
        0.0
    } else {
        reference_time / measured_time
    }
}

/// Parallel efficiency: speedup divided by the number of workers.
pub fn efficiency(reference_time: f64, measured_time: f64, workers: usize) -> f64 {
    if workers == 0 {
        0.0
    } else {
        speedup(reference_time, measured_time) / workers as f64
    }
}

/// Tasks-per-second throughput recorded in fixed intervals of virtual time.
///
/// Every completion is assigned to the bucket containing its completion
/// time; the timeline then reports tasks/second per bucket, which is the
/// series plotted by the adaptation-response experiment (E7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputTimeline {
    interval_s: f64,
    buckets: Vec<u64>,
}

impl ThroughputTimeline {
    /// A timeline with the given bucket width (clamped to ≥ 1 ms).
    pub fn new(interval_s: f64) -> Self {
        ThroughputTimeline {
            interval_s: interval_s.max(1e-3),
            buckets: Vec::new(),
        }
    }

    /// Bucket width in seconds.
    pub fn interval(&self) -> f64 {
        self.interval_s
    }

    /// Record one completion at virtual time `t`.
    pub fn record(&mut self, t: SimTime) {
        let idx = (t.as_secs() / self.interval_s).floor() as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Number of buckets (up to the latest completion seen).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Raw completion counts per bucket.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Throughput (tasks per second) per bucket.
    pub fn rates(&self) -> Vec<f64> {
        self.buckets
            .iter()
            .map(|&c| c as f64 / self.interval_s)
            .collect()
    }

    /// Total completions recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean throughput over the non-empty prefix of the timeline.
    pub fn mean_rate(&self) -> f64 {
        if self.buckets.is_empty() {
            0.0
        } else {
            self.total() as f64 / (self.buckets.len() as f64 * self.interval_s)
        }
    }

    /// Minimum bucket throughput (tasks/s) — the depth of the dip a load
    /// spike causes.
    pub fn min_rate(&self) -> f64 {
        self.rates().into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Render as CSV (`t_start_s,completions,rate_per_s`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_start_s,completions,rate_per_s\n");
        for (i, &c) in self.buckets.iter().enumerate() {
            out.push_str(&format!(
                "{:.3},{},{:.4}\n",
                i as f64 * self.interval_s,
                c,
                c as f64 / self.interval_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_efficiency_basics() {
        assert_eq!(speedup(100.0, 25.0), 4.0);
        assert_eq!(speedup(100.0, 0.0), 0.0);
        assert_eq!(efficiency(100.0, 25.0, 8), 0.5);
        assert_eq!(efficiency(100.0, 25.0, 0), 0.0);
    }

    #[test]
    fn timeline_buckets_completions() {
        let mut tl = ThroughputTimeline::new(10.0);
        for s in [1.0, 2.0, 11.0, 25.0, 26.0, 27.0] {
            tl.record(SimTime::new(s));
        }
        assert_eq!(tl.counts(), &[2, 1, 3]);
        assert_eq!(tl.total(), 6);
        assert_eq!(tl.len(), 3);
        let rates = tl.rates();
        assert!((rates[0] - 0.2).abs() < 1e-12);
        assert!((rates[2] - 0.3).abs() < 1e-12);
        assert!((tl.mean_rate() - 0.2).abs() < 1e-12);
        assert!((tl.min_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_is_sane() {
        let tl = ThroughputTimeline::new(5.0);
        assert!(tl.is_empty());
        assert_eq!(tl.total(), 0);
        assert_eq!(tl.mean_rate(), 0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tl = ThroughputTimeline::new(1.0);
        tl.record(SimTime::new(0.5));
        tl.record(SimTime::new(1.5));
        let csv = tl.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("t_start_s,"));
    }

    #[test]
    fn degenerate_interval_is_clamped() {
        let tl = ThroughputTimeline::new(0.0);
        assert!(tl.interval() > 0.0);
    }
}
