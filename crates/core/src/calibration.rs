//! Calibration — Algorithm 1 of the paper.
//!
//! > *"The calibration is an autonomic stage, which executes a sample of the
//! > data on every allocated node, extrapolating the node performance in
//! > order to select the fittest nodes for the given computation under the
//! > current resource conditions. … Nodes are ranked by extrapolating their
//! > performance based on the execution times only (the faster a node the
//! > fitter it is), or on statistical functions, such as univariate and
//! > multivariate linear regression involving execution time, processor
//! > load, and bandwidth utilisation."*
//!
//! The calibrator takes the candidate node pool and the *real* task list,
//! runs a small sample of tasks on every node concurrently, observes CPU load
//! and bandwidth through the monitoring registry, and produces a
//! [`CalibrationReport`]: the ranked table *T*, the `Chosen` set of fittest
//! nodes, per-node weights used by adaptive chunking, and the task outcomes
//! produced along the way (calibration work **contributes to the overall
//! job**, exactly as the paper states).

use crate::config::CalibrationConfig;
use crate::error::GraspError;
use crate::task::{TaskOutcome, TaskSpec};
use gridmon::MonitorRegistry;
use gridsim::{Grid, NodeId, SimTime};
use gridstats::{mean, multivariate_regression, reject_outliers};
use serde::{Deserialize, Serialize};

/// How node performance is extrapolated from the calibration samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CalibrationMode {
    /// Rank by raw mean execution time ("the faster a node the fitter it is").
    TimeOnly,
    /// Univariate statistical calibration: remove the pool-wide linear effect
    /// of CPU load on execution time before ranking, so a node that was
    /// transiently busy during sampling is not permanently misjudged.
    Univariate,
    /// Multivariate statistical calibration: remove the linear effects of
    /// both CPU load and bandwidth utilisation.
    Multivariate,
}

impl CalibrationMode {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CalibrationMode::TimeOnly => "time-only",
            CalibrationMode::Univariate => "univariate",
            CalibrationMode::Multivariate => "multivariate",
        }
    }
}

/// The calibration measurements for one node (one row of the table *T*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeCalibration {
    /// The node.
    pub node: NodeId,
    /// Observed times of the node's samples, in seconds per work unit
    /// (normalised by each sample task's `work` so irregular task sizes do
    /// not skew the ranking).
    pub sample_times: Vec<f64>,
    /// Mean observed per-work-unit time after outlier rejection.
    pub mean_time: f64,
    /// Extrapolated ("adjusted") per-work-unit time used for ranking.
    pub adjusted_time: f64,
    /// External CPU load observed on the node during calibration.
    pub cpu_load: f64,
    /// Bandwidth availability towards the master observed during calibration.
    pub bandwidth_availability: f64,
    /// Relative speed weight (pool mean adjusted time / this node's adjusted
    /// time); 1.0 means average, 2.0 means twice as fast as average.
    pub weight: f64,
    /// Whether the node was up and produced at least one sample.
    pub usable: bool,
}

/// The result of running Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Extrapolation mode that produced this report.
    pub mode: CalibrationMode,
    /// Per-node table *T*, in candidate order.
    pub table: Vec<NodeCalibration>,
    /// Every usable node, fittest first.
    pub ranking: Vec<NodeId>,
    /// The selected fittest nodes ("Chosen"), fittest first.
    pub chosen: Vec<NodeId>,
    /// Virtual time consumed by the calibration phase.
    pub duration: SimTime,
    /// How many real tasks were consumed as calibration samples.
    pub tasks_consumed: usize,
    /// Outcomes of those tasks (they count towards the job's results).
    pub outcomes: Vec<TaskOutcome>,
}

impl CalibrationReport {
    /// Per-work-unit reference times of the chosen nodes, used to derive
    /// the performance threshold *Z*.
    pub fn chosen_reference_times(&self) -> Vec<f64> {
        self.table
            .iter()
            .filter(|c| self.chosen.contains(&c.node))
            .map(|c| c.adjusted_time)
            .collect()
    }

    /// The calibrated weight of a node (1.0 for unknown nodes).
    pub fn weight_of(&self, node: NodeId) -> f64 {
        self.table
            .iter()
            .find(|c| c.node == node)
            .map(|c| c.weight)
            .unwrap_or(1.0)
    }

    /// Render the table as an aligned text report (used by examples and the
    /// experiment binaries).
    pub fn to_table_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "calibration mode={} duration={:.3}s tasks_consumed={}\n",
            self.mode.name(),
            self.duration.as_secs(),
            self.tasks_consumed
        ));
        out.push_str("node      mean_t    adj_t     cpu_load  bw_avail  weight  chosen\n");
        for row in &self.table {
            out.push_str(&format!(
                "{:<9} {:<9.4} {:<9.4} {:<9.3} {:<9.3} {:<7.3} {}\n",
                row.node.to_string(),
                row.mean_time,
                row.adjusted_time,
                row.cpu_load,
                row.bandwidth_availability,
                row.weight,
                if self.chosen.contains(&row.node) {
                    "*"
                } else {
                    ""
                }
            ));
        }
        out
    }
}

/// Runs Algorithm 1 against a grid.
#[derive(Debug, Clone)]
pub struct Calibrator {
    config: CalibrationConfig,
}

impl Calibrator {
    /// A calibrator with the given configuration.
    pub fn new(config: CalibrationConfig) -> Self {
        Calibrator { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CalibrationConfig {
        &self.config
    }

    /// Execute the calibration phase.
    ///
    /// * `grid` — the (simulated) grid.
    /// * `registry` — monitoring registry; observations taken here feed the
    ///   statistical modes and stay available to the execution phase.
    /// * `candidates` — the allocated node pool *P*.
    /// * `tasks` — the job's task list; the first few tasks are consumed as
    ///   calibration samples and their outcomes are returned in the report.
    /// * `master` — the root node data is shipped from / results shipped to.
    /// * `start` — virtual time at which calibration begins.
    pub fn calibrate(
        &self,
        grid: &Grid,
        registry: &mut MonitorRegistry,
        candidates: &[NodeId],
        tasks: &[TaskSpec],
        master: NodeId,
        start: SimTime,
    ) -> Result<CalibrationReport, GraspError> {
        if candidates.is_empty() {
            return Err(GraspError::NoUsableNodes);
        }
        let up_candidates: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|&n| grid.is_up(n, start))
            .collect();
        if up_candidates.is_empty() {
            return Err(GraspError::CalibrationFailed(
                "every candidate node is down".to_string(),
            ));
        }

        // When sampling is disabled (samples_per_node == 0) we still build a
        // report, ranked by nominal speed, so baselines have weights.
        if self.config.samples_per_node == 0 || tasks.is_empty() {
            return Ok(self.nominal_report(grid, &up_candidates, start));
        }

        // ------------------------------------------------------------------
        // "Execute F over P nodes concurrently; Set t ← execution times(F)"
        // ------------------------------------------------------------------
        let samples = self.config.samples_per_node;
        let mut outcomes = Vec::new();
        let mut table = Vec::with_capacity(candidates.len());
        let mut task_cursor = 0usize;
        let mut calibration_end = start;
        let mean_work = mean(&tasks.iter().map(|t| t.work).collect::<Vec<_>>()).unwrap_or(1.0);
        let mean_in = tasks.iter().map(|t| t.input_bytes).sum::<u64>() / tasks.len() as u64;
        let mean_out = tasks.iter().map(|t| t.output_bytes).sum::<u64>() / tasks.len() as u64;
        // The job's unit system is decided once: seconds per work unit when
        // any task carries real work, raw seconds for an all-zero-work
        // (pure-transfer) job.  Mixing the two across nodes would make the
        // ranking compare incomparable values.
        let job_has_work = tasks.iter().any(|t| t.work > 0.0);

        for &node in candidates {
            if !grid.is_up(node, start) {
                table.push(NodeCalibration {
                    node,
                    sample_times: Vec::new(),
                    mean_time: f64::INFINITY,
                    adjusted_time: f64::INFINITY,
                    cpu_load: 1.0,
                    bandwidth_availability: 0.0,
                    weight: 0.0,
                    usable: false,
                });
                continue;
            }
            // Observe the node's resource state at the start of calibration.
            let obs = registry.observe(grid, node, start);

            let mut node_now = start;
            let mut sample_times = Vec::with_capacity(samples);
            for _ in 0..samples {
                // Draw the next real task if any remain, otherwise probe with
                // a synthetic task of average shape (not recorded as an outcome).
                let (spec, is_real) = if task_cursor < tasks.len() {
                    let s = tasks[task_cursor];
                    task_cursor += 1;
                    (s, true)
                } else {
                    (
                        TaskSpec::new(usize::MAX, mean_work, mean_in, mean_out),
                        false,
                    )
                };
                let dispatched = node_now;
                let after_in = match grid.transfer(master, node, spec.input_bytes, node_now) {
                    Some(t) => node_now + t.duration,
                    None => node_now,
                };
                let after_compute = match grid.execute(node, spec.work, after_in) {
                    Some(t) => t,
                    None => {
                        // The node died mid-sample; mark it unusable.
                        sample_times.clear();
                        break;
                    }
                };
                let done = match grid.transfer(node, master, spec.output_bytes, after_compute) {
                    Some(t) => after_compute + t.duration,
                    None => after_compute,
                };
                // Recorded as (work, seconds); normalised per work unit
                // below so irregular task sizes do not masquerade as node
                // speed differences (the nominal report's 1/speed entries
                // are in the same seconds-per-work-unit unit).
                sample_times.push((spec.work, (done - dispatched).as_secs()));
                node_now = done;
                if is_real {
                    outcomes.push(TaskOutcome {
                        task: spec.id,
                        node,
                        work: spec.work,
                        dispatched,
                        completed: done,
                        during_calibration: true,
                    });
                }
            }
            calibration_end = calibration_end.max(node_now);

            let usable = !sample_times.is_empty();
            // In a job with real work, zero-work (pure-communication)
            // samples carry no per-work-unit signal and are dropped; a node
            // that drew *only* such samples falls back to its nominal speed
            // (the same seconds-per-work-unit unit), never to raw seconds —
            // raw seconds are used only when the whole job is zero-work, so
            // every node is in the same unit either way.
            let normalized: Vec<f64> = if job_has_work {
                let with_work: Vec<f64> = sample_times
                    .iter()
                    .filter(|&&(w, _)| w > 0.0)
                    .map(|&(w, s)| crate::task::normalize_time(w, s))
                    .collect();
                if with_work.is_empty() && usable {
                    vec![
                        1.0 / grid
                            .node(node)
                            .map(|s| s.base_speed)
                            .unwrap_or(1.0)
                            .max(1e-9),
                    ]
                } else {
                    with_work
                }
            } else {
                sample_times.iter().map(|&(_, s)| s).collect()
            };
            let sample_times: Vec<f64> = normalized;
            let filtered = reject_outliers(&sample_times, self.config.outlier_policy);
            let mean_time = mean(&filtered).unwrap_or(f64::INFINITY);
            table.push(NodeCalibration {
                node,
                sample_times,
                mean_time,
                adjusted_time: mean_time, // adjusted below
                cpu_load: obs.cpu_load,
                bandwidth_availability: obs.bandwidth_availability,
                weight: 0.0,
                usable,
            });
        }

        // ------------------------------------------------------------------
        // "if Statistical Calibration then Collect processor and bandwidth
        //  values; Adjust T statistically"
        // ------------------------------------------------------------------
        self.adjust_statistically(&mut table);

        // ------------------------------------------------------------------
        // "Rank P by extrapolating performance based on T; Select Chosen"
        // ------------------------------------------------------------------
        let (ranking, chosen) = self.rank_and_select(&table);
        if chosen.is_empty() {
            return Err(GraspError::CalibrationFailed(
                "no node produced a usable calibration sample".to_string(),
            ));
        }
        Self::assign_weights(&mut table, &chosen);

        Ok(CalibrationReport {
            mode: self.config.mode,
            table,
            ranking,
            chosen,
            duration: calibration_end - start,
            tasks_consumed: task_cursor,
            outcomes,
        })
    }

    /// Build a report from nominal node speeds without running any samples
    /// (used by non-calibrating baselines).
    fn nominal_report(&self, grid: &Grid, up: &[NodeId], _start: SimTime) -> CalibrationReport {
        let mut table: Vec<NodeCalibration> = up
            .iter()
            .map(|&node| {
                let speed = grid.node(node).map(|n| n.base_speed).unwrap_or(1.0);
                let t = 1.0 / speed;
                NodeCalibration {
                    node,
                    sample_times: Vec::new(),
                    mean_time: t,
                    adjusted_time: t,
                    cpu_load: 0.0,
                    bandwidth_availability: 1.0,
                    weight: 0.0,
                    usable: true,
                }
            })
            .collect();
        let (ranking, chosen) = self.rank_and_select(&table);
        Self::assign_weights(&mut table, &chosen);
        CalibrationReport {
            mode: self.config.mode,
            table,
            ranking,
            chosen,
            duration: SimTime::ZERO,
            tasks_consumed: 0,
            outcomes: Vec::new(),
        }
    }

    /// Remove the pool-wide linear effect of resource conditions from the
    /// observed times (univariate: CPU load; multivariate: CPU load and
    /// bandwidth utilisation).  Falls back to raw times when the regression
    /// is degenerate.
    fn adjust_statistically(&self, table: &mut [NodeCalibration]) {
        if matches!(self.config.mode, CalibrationMode::TimeOnly) {
            return;
        }
        let usable: Vec<&NodeCalibration> = table
            .iter()
            .filter(|c| c.usable && c.mean_time.is_finite())
            .collect();
        if usable.len() < 3 {
            return;
        }
        let y: Vec<f64> = usable.iter().map(|c| c.mean_time).collect();
        // Candidate predictors: CPU load, and (for multivariate) bandwidth
        // utilisation.  Predictors that barely vary across the pool carry no
        // information and would make the normal equations singular, so they
        // are dropped before fitting.
        let predictor_of = |c: &NodeCalibration, which: usize| -> f64 {
            match which {
                0 => c.cpu_load,
                _ => 1.0 - c.bandwidth_availability,
            }
        };
        let candidate_predictors: &[usize] = match self.config.mode {
            CalibrationMode::Univariate => &[0],
            CalibrationMode::Multivariate => &[0, 1],
            CalibrationMode::TimeOnly => &[],
        };
        let kept: Vec<usize> = candidate_predictors
            .iter()
            .copied()
            .filter(|&which| {
                let col: Vec<f64> = usable.iter().map(|c| predictor_of(c, which)).collect();
                gridstats::sample_variance(&col).unwrap_or(0.0) > 1e-9
            })
            .collect();
        if kept.is_empty() {
            return;
        }
        let rows: Vec<Vec<f64>> = usable
            .iter()
            .map(|c| kept.iter().map(|&which| predictor_of(c, which)).collect())
            .collect();
        let fit = match multivariate_regression(&rows, &y) {
            Ok(f) => f,
            Err(_) => return,
        };
        for c in table.iter_mut() {
            if !c.usable || !c.mean_time.is_finite() {
                continue;
            }
            let effect: f64 = kept
                .iter()
                .enumerate()
                .map(|(i, &which)| fit.coefficients[i + 1] * predictor_of(c, which))
                .sum();
            // Subtract only a performance-degrading effect; a negative
            // "effect" would mean load made the node faster, which is noise.
            let adjusted = c.mean_time - effect.max(0.0);
            c.adjusted_time = adjusted.max(c.mean_time * 0.05);
        }
    }

    /// Rank usable nodes by adjusted time and select the fittest fraction.
    fn rank_and_select(&self, table: &[NodeCalibration]) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut usable: Vec<(&NodeCalibration, f64)> = table
            .iter()
            .filter(|c| c.usable && c.adjusted_time.is_finite())
            .map(|c| (c, c.adjusted_time))
            .collect();
        usable.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let ranking: Vec<NodeId> = usable.iter().map(|(c, _)| c.node).collect();
        if ranking.is_empty() {
            return (ranking, Vec::new());
        }
        let frac = self.config.selection_fraction.clamp(1e-6, 1.0);
        let want = ((ranking.len() as f64) * frac).ceil() as usize;
        let count = want.max(self.config.min_nodes.max(1)).min(ranking.len());
        let chosen = ranking[..count].to_vec();
        (ranking, chosen)
    }

    /// Weight chosen nodes by relative speed; unchosen/unusable nodes get 0.
    fn assign_weights(table: &mut [NodeCalibration], chosen: &[NodeId]) {
        let chosen_times: Vec<f64> = table
            .iter()
            .filter(|c| chosen.contains(&c.node) && c.adjusted_time.is_finite())
            .map(|c| c.adjusted_time)
            .collect();
        let pool_mean = mean(&chosen_times).unwrap_or(1.0);
        for c in table.iter_mut() {
            c.weight = if chosen.contains(&c.node) && c.adjusted_time > 0.0 {
                pool_mean / c.adjusted_time
            } else {
                0.0
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CalibrationConfig;
    use gridsim::{ConstantLoad, FaultPlan, GridBuilder, TopologyBuilder};
    use gridstats::spearman_rho;

    fn registry() -> MonitorRegistry {
        MonitorRegistry::new(NodeId(0), 64)
    }

    fn cfg(mode: CalibrationMode) -> CalibrationConfig {
        CalibrationConfig {
            mode,
            samples_per_node: 2,
            selection_fraction: 0.5,
            min_nodes: 1,
            ..CalibrationConfig::default()
        }
    }

    fn tasks(n: usize) -> Vec<TaskSpec> {
        TaskSpec::uniform(n, 100.0, 64 * 1024, 64 * 1024)
    }

    #[test]
    fn time_only_ranking_matches_true_speed_on_idle_grid() {
        // Speeds 10, 20, 40, 80: ranking should be n3, n2, n1, n0.
        let mut b = gridsim::TopologyBuilder::new();
        let s = b.add_site("c", gridsim::LinkSpec::lan());
        for (i, speed) in [10.0, 20.0, 40.0, 80.0].iter().enumerate() {
            b.add_node(s, format!("n{i}"), *speed);
        }
        let grid = Grid::dedicated(b.build());
        let cal = Calibrator::new(cfg(CalibrationMode::TimeOnly));
        let report = cal
            .calibrate(
                &grid,
                &mut registry(),
                &grid.node_ids(),
                &tasks(64),
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(report.ranking[0], NodeId(3));
        assert_eq!(report.ranking[3], NodeId(0));
        // 50 % selection of 4 nodes → the 2 fastest.
        assert_eq!(report.chosen, vec![NodeId(3), NodeId(2)]);
        // Weights: the fastest chosen node is above-average.
        assert!(report.weight_of(NodeId(3)) > 1.0);
        assert_eq!(report.weight_of(NodeId(0)), 0.0);
        assert!(report.duration.as_secs() > 0.0);
        assert_eq!(report.tasks_consumed, 8);
        assert_eq!(report.outcomes.len(), 8);
        assert!(report.outcomes.iter().all(|o| o.during_calibration));
        assert!(report
            .to_table_string()
            .contains("calibration mode=time-only"));
    }

    #[test]
    fn calibration_consumes_tasks_from_the_front() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(4, 50.0));
        let cal = Calibrator::new(cfg(CalibrationMode::TimeOnly));
        let ts = tasks(100);
        let report = cal
            .calibrate(
                &grid,
                &mut registry(),
                &grid.node_ids(),
                &ts,
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();
        let ids: Vec<usize> = report.outcomes.iter().map(|o| o.task).collect();
        assert_eq!(report.tasks_consumed, 8);
        assert!(
            ids.iter().all(|&id| id < 8),
            "only the first 8 tasks are consumed"
        );
    }

    #[test]
    fn statistical_calibration_recovers_intrinsic_speed_under_load() {
        // All nodes have identical hardware, but half are externally loaded
        // during calibration.  Time-only calibration misranks them as slow;
        // univariate calibration should largely discount the transient load.
        let topo = TopologyBuilder::uniform_cluster(8, 40.0);
        let node_ids: Vec<NodeId> = topo.node_ids();
        let mut builder = GridBuilder::new(topo);
        for &n in &node_ids {
            let load = if n.index() % 2 == 0 { 0.0 } else { 0.6 };
            builder = builder.node_load(n, ConstantLoad::new(load));
        }
        let grid = builder.build();

        let time_only = Calibrator::new(cfg(CalibrationMode::TimeOnly))
            .calibrate(
                &grid,
                &mut registry(),
                &node_ids,
                &tasks(64),
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();
        let univariate = Calibrator::new(cfg(CalibrationMode::Univariate))
            .calibrate(
                &grid,
                &mut registry(),
                &node_ids,
                &tasks(64),
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();

        // Time-only: loaded nodes have ~2.5x the time of idle nodes.
        let spread = |r: &CalibrationReport| {
            let loaded: Vec<f64> = r
                .table
                .iter()
                .filter(|c| c.node.index() % 2 == 1)
                .map(|c| c.adjusted_time)
                .collect();
            let idle: Vec<f64> = r
                .table
                .iter()
                .filter(|c| c.node.index() % 2 == 0)
                .map(|c| c.adjusted_time)
                .collect();
            mean(&loaded).unwrap() / mean(&idle).unwrap()
        };
        assert!(spread(&time_only) > 2.0);
        assert!(
            spread(&univariate) < spread(&time_only) * 0.6,
            "statistical adjustment should shrink the load-induced spread: {} vs {}",
            spread(&univariate),
            spread(&time_only)
        );
    }

    #[test]
    fn multivariate_calibration_also_discounts_bandwidth() {
        // Two sites; the remote site's link is congested, inflating its
        // transfer times.  Multivariate adjustment should bring the remote
        // nodes' adjusted times closer to the local ones than raw times are.
        let topo = TopologyBuilder::multi_site(&[(4, 40.0), (4, 40.0)]);
        let s0 = topo.sites()[0].id;
        let s1 = topo.sites()[1].id;
        let node_ids = topo.node_ids();
        let grid = GridBuilder::new(topo)
            .link_load(s0, s1, ConstantLoad::new(0.8))
            .build();
        let heavy_tasks: Vec<TaskSpec> = TaskSpec::uniform(64, 20.0, 4 * 1024 * 1024, 1024 * 1024);

        let raw = Calibrator::new(cfg(CalibrationMode::TimeOnly))
            .calibrate(
                &grid,
                &mut registry(),
                &node_ids,
                &heavy_tasks,
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();
        let multi = Calibrator::new(cfg(CalibrationMode::Multivariate))
            .calibrate(
                &grid,
                &mut registry(),
                &node_ids,
                &heavy_tasks,
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();
        let remote_ratio = |r: &CalibrationReport| {
            let local: Vec<f64> = r.table[..4].iter().map(|c| c.adjusted_time).collect();
            let remote: Vec<f64> = r.table[4..].iter().map(|c| c.adjusted_time).collect();
            mean(&remote).unwrap() / mean(&local).unwrap()
        };
        assert!(remote_ratio(&raw) > 1.5);
        assert!(remote_ratio(&multi) < remote_ratio(&raw));
    }

    #[test]
    fn ranking_correlates_with_ground_truth_speed() {
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(16, 10.0, 100.0, 3));
        let node_ids = grid.node_ids();
        let cal = Calibrator::new(CalibrationConfig {
            samples_per_node: 1,
            selection_fraction: 1.0,
            ..CalibrationConfig::default()
        });
        let report = cal
            .calibrate(
                &grid,
                &mut registry(),
                &node_ids,
                &tasks(64),
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();
        // Spearman correlation between adjusted time and 1/speed should be ~1.
        let adj: Vec<f64> = report.table.iter().map(|c| c.adjusted_time).collect();
        let inv_speed: Vec<f64> = node_ids
            .iter()
            .map(|&n| 1.0 / grid.node(n).unwrap().base_speed)
            .collect();
        let rho = spearman_rho(&adj, &inv_speed).unwrap();
        assert!(rho > 0.95, "rho = {rho}");
    }

    #[test]
    fn down_nodes_are_excluded_from_the_chosen_set() {
        let topo = TopologyBuilder::uniform_cluster(4, 50.0);
        let faults = FaultPlan::none().with_outage(NodeId(1), SimTime::ZERO, SimTime::new(1e9));
        let grid = GridBuilder::new(topo).faults(faults).build();
        let cal = Calibrator::new(CalibrationConfig {
            samples_per_node: 1,
            selection_fraction: 1.0,
            ..CalibrationConfig::default()
        });
        let report = cal
            .calibrate(
                &grid,
                &mut registry(),
                &grid.node_ids(),
                &tasks(16),
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(!report.chosen.contains(&NodeId(1)));
        assert_eq!(report.chosen.len(), 3);
        let down_row = report.table.iter().find(|c| c.node == NodeId(1)).unwrap();
        assert!(!down_row.usable);
        assert_eq!(down_row.weight, 0.0);
    }

    #[test]
    fn all_nodes_down_is_an_error() {
        let topo = TopologyBuilder::uniform_cluster(2, 50.0);
        let faults = FaultPlan::none()
            .with_outage(NodeId(0), SimTime::ZERO, SimTime::new(1e9))
            .with_outage(NodeId(1), SimTime::ZERO, SimTime::new(1e9));
        let grid = GridBuilder::new(topo).faults(faults).build();
        let cal = Calibrator::new(CalibrationConfig::default());
        let err = cal
            .calibrate(
                &grid,
                &mut registry(),
                &grid.node_ids(),
                &tasks(4),
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, GraspError::CalibrationFailed(_)));
    }

    #[test]
    fn empty_candidate_pool_is_an_error() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(2, 50.0));
        let cal = Calibrator::new(CalibrationConfig::default());
        assert!(matches!(
            cal.calibrate(
                &grid,
                &mut registry(),
                &[],
                &tasks(4),
                NodeId(0),
                SimTime::ZERO
            ),
            Err(GraspError::NoUsableNodes)
        ));
    }

    #[test]
    fn zero_samples_yields_nominal_report() {
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(8, 10.0, 80.0, 1));
        let cal = Calibrator::new(CalibrationConfig {
            samples_per_node: 0,
            selection_fraction: 1.0,
            ..CalibrationConfig::default()
        });
        let report = cal
            .calibrate(
                &grid,
                &mut registry(),
                &grid.node_ids(),
                &tasks(16),
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(report.tasks_consumed, 0);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.duration, SimTime::ZERO);
        assert_eq!(report.chosen.len(), 8);
        // Still ranked by (nominal) speed.
        let fastest = report.ranking[0];
        let slowest = *report.ranking.last().unwrap();
        assert!(grid.node(fastest).unwrap().base_speed >= grid.node(slowest).unwrap().base_speed);
    }

    #[test]
    fn min_nodes_overrides_small_fractions() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(8, 50.0));
        let cal = Calibrator::new(CalibrationConfig {
            samples_per_node: 1,
            selection_fraction: 0.01,
            min_nodes: 4,
            ..CalibrationConfig::default()
        });
        let report = cal
            .calibrate(
                &grid,
                &mut registry(),
                &grid.node_ids(),
                &tasks(32),
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(report.chosen.len(), 4);
    }

    #[test]
    fn more_tasks_than_available_uses_synthetic_probes() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(4, 50.0));
        let cal = Calibrator::new(CalibrationConfig {
            samples_per_node: 3,
            selection_fraction: 1.0,
            ..CalibrationConfig::default()
        });
        // Only 4 tasks but 4 nodes × 3 samples wanted.
        let report = cal
            .calibrate(
                &grid,
                &mut registry(),
                &grid.node_ids(),
                &tasks(4),
                NodeId(0),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(report.tasks_consumed, 4);
        assert_eq!(
            report.outcomes.len(),
            4,
            "synthetic probes are not job outcomes"
        );
        assert_eq!(report.chosen.len(), 4);
    }
}
