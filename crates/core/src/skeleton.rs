//! Composable skeleton expressions and pluggable execution backends.
//!
//! The paper's skeletons are explicitly *composable* — "the model supports
//! nesting, e.g. a farm whose workers are pipelines" — and composition is
//! what makes structured adaptation pay off: a nested skeleton carries the
//! intrinsic properties of the whole structure, so it calibrates and adapts
//! as one unit.  This module makes the composition a first-class value:
//!
//! * [`Skeleton`] is an expression tree built with [`Skeleton::farm`],
//!   [`Skeleton::pipeline`], [`Skeleton::farm_of`] (a farm whose tasks are
//!   sub-skeletons, e.g. a farm-of-pipelines) and [`Skeleton::pipeline_of`]
//!   (a pipeline whose stages may be internally farmed, i.e. replicated).
//! * [`SkeletonProperties`] are derived **bottom-up** from the tree (the
//!   property algebra: comp/comm ratios and rebalancing rules propagate from
//!   the children; see `SkeletonProperties::compose_farm` /
//!   `compose_pipeline`).
//! * [`Backend`] is the `compile → calibrate/execute` life-cycle of Figure 1
//!   behind a trait, so the same expression runs on the simulated grid
//!   ([`SimBackend`]) or on real threads (`ThreadBackend` in `grasp-exec`)
//!   through the single entry point `Grasp::run`.
//! * [`SkeletonOutcome`] is the backend-neutral result: unit counts,
//!   makespan, and a child outcome per sub-skeleton, with the backend's rich
//!   native report attached as [`OutcomeDetail`].
//!
//! Calibration (Algorithm 1) is deliberately *not* a separate trait method:
//! the paper folds it into the job ("the processing performed during the
//! calibration contributes to the overall job"), so it is the opening act of
//! [`Backend::execute`] and is reported through
//! [`SkeletonOutcome::calibration_s`].

use crate::adaptation::AdaptationLog;
use crate::config::GraspConfig;
use crate::error::GraspError;
use crate::farm::{FarmOutcome, TaskFarm};
use crate::pipeline::{Pipeline, PipelineOutcome, StageSpec};
use crate::properties::{SkeletonKind, SkeletonProperties};
use crate::task::TaskSpec;
use gridsim::{Grid, NodeId};

/// One stage of a [`Skeleton::pipeline_of`] composition: a [`StageSpec`]
/// optionally farmed across `replicas` workers (the nested-farm stage of a
/// pipeline-of-farms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarmedStage {
    /// The stage description (work per item, forwarded bytes, state).
    pub spec: StageSpec,
    /// How many farm workers serve this stage concurrently (≥ 1; 1 means a
    /// plain, unreplicated stage).
    pub replicas: usize,
}

impl FarmedStage {
    /// A plain (unreplicated) stage.
    pub fn plain(spec: StageSpec) -> Self {
        FarmedStage { spec, replicas: 1 }
    }

    /// A stage farmed across `replicas` workers (clamped to ≥ 1).
    pub fn farmed(spec: StageSpec, replicas: usize) -> Self {
        FarmedStage {
            spec,
            replicas: replicas.max(1),
        }
    }
}

/// A composable skeleton expression.
///
/// Leaves are the paper's two skeletons (task farm, pipeline); interior
/// nodes compose them (farm-of-pipelines, pipeline-of-farms, and deeper
/// nestings thereof).  The expression is backend-agnostic: hand it to
/// `Grasp::run` together with any [`Backend`].
#[derive(Debug, Clone, PartialEq)]
pub enum Skeleton {
    /// Independent tasks distributed master → workers.
    Farm {
        /// The task list.
        tasks: Vec<TaskSpec>,
    },
    /// A stream of `items` elements flowing through an ordered stage chain.
    Pipeline {
        /// The stage chain.
        stages: Vec<StageSpec>,
        /// Stream length.
        items: usize,
    },
    /// A farm whose tasks are themselves skeletons (each child is one
    /// independent sub-job, e.g. a whole pipeline instance).
    FarmOf {
        /// The independent sub-skeletons.
        children: Vec<Skeleton>,
    },
    /// A pipeline whose stages may be internally farmed (replicated).
    PipelineOf {
        /// The stage chain with per-stage replication.
        stages: Vec<FarmedStage>,
        /// Stream length.
        items: usize,
    },
}

/// The span of globally numbered work units covered by one child of a
/// composition, produced by [`Skeleton::lower_to_farm`].  Backends use the
/// spans to split a flat outcome back into the per-child outcomes of the
/// expression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitSpan {
    /// The child's skeleton kind.
    pub kind: SkeletonKind,
    /// First global unit id of the child.
    pub start: usize,
    /// Number of units the child contributes.
    pub count: usize,
    /// Spans of the child's own children (empty for leaves).
    pub children: Vec<UnitSpan>,
}

impl UnitSpan {
    /// The per-child [`SkeletonOutcome`] of this span, derived from observed
    /// per-unit completion times (global unit id → seconds since job start).
    ///
    /// Every backend splits its flat engine result back into the expression
    /// tree through this one helper, so the semantics cannot diverge:
    /// `completed` counts only units with a recorded completion, and the
    /// child's makespan is the latest completion among *its own* units.
    pub fn outcome_from(
        &self,
        completions: &std::collections::BTreeMap<usize, f64>,
    ) -> SkeletonOutcome {
        let range = self.start..self.start + self.count;
        let unit_ids: Vec<usize> = completions
            .range(range.clone())
            .map(|(&id, _)| id)
            .collect();
        let makespan_s = completions
            .range(range)
            .map(|(_, &t)| t)
            .fold(0.0, f64::max);
        SkeletonOutcome {
            kind: self.kind,
            completed: unit_ids.len(),
            unit_ids,
            makespan_s,
            calibration_s: 0.0,
            adaptation_log: AdaptationLog::new(),
            resilience: ResilienceReport::default(),
            children: self
                .children
                .iter()
                .map(|c| c.outcome_from(completions))
                .collect(),
            detail: OutcomeDetail::None,
        }
    }
}

impl Skeleton {
    /// A task farm over `tasks`.
    pub fn farm(tasks: Vec<TaskSpec>) -> Self {
        Skeleton::Farm { tasks }
    }

    /// A pipeline streaming `items` elements through `stages`.
    pub fn pipeline(stages: Vec<StageSpec>, items: usize) -> Self {
        Skeleton::Pipeline { stages, items }
    }

    /// A farm whose tasks are sub-skeletons (e.g. a farm-of-pipelines).
    pub fn farm_of(children: Vec<Skeleton>) -> Self {
        Skeleton::FarmOf { children }
    }

    /// A pipeline whose stages may be farmed ([`FarmedStage::farmed`]).
    pub fn pipeline_of(stages: Vec<FarmedStage>, items: usize) -> Self {
        Skeleton::PipelineOf { stages, items }
    }

    /// The structural kind of the composition.  A `FarmOf` over plain farms
    /// collapses to a task farm; a `PipelineOf` with no replicated stage is a
    /// plain pipeline.
    pub fn kind(&self) -> SkeletonKind {
        match self {
            Skeleton::Farm { .. } => SkeletonKind::TaskFarm,
            Skeleton::Pipeline { .. } => SkeletonKind::Pipeline,
            Skeleton::FarmOf { children } => {
                if children.iter().all(|c| c.kind() == SkeletonKind::TaskFarm) {
                    SkeletonKind::TaskFarm
                } else {
                    SkeletonKind::FarmOfPipelines
                }
            }
            Skeleton::PipelineOf { stages, .. } => {
                if stages.iter().all(|s| s.replicas <= 1) {
                    SkeletonKind::Pipeline
                } else {
                    SkeletonKind::PipelineOfFarms
                }
            }
        }
    }

    /// Static validation (the compilation phase's first step): every leaf
    /// must carry work and every composition at least one child.
    pub fn validate(&self) -> Result<(), GraspError> {
        match self {
            Skeleton::Farm { tasks } => {
                if tasks.is_empty() {
                    return Err(GraspError::EmptyWorkload);
                }
            }
            Skeleton::Pipeline { stages, items } => {
                if stages.is_empty() {
                    return Err(GraspError::EmptyPipeline);
                }
                if *items == 0 {
                    return Err(GraspError::EmptyWorkload);
                }
            }
            Skeleton::FarmOf { children } => {
                if children.is_empty() {
                    return Err(GraspError::EmptyWorkload);
                }
                for c in children {
                    c.validate()?;
                }
            }
            Skeleton::PipelineOf { stages, items } => {
                if stages.is_empty() {
                    return Err(GraspError::EmptyPipeline);
                }
                if *items == 0 {
                    return Err(GraspError::EmptyWorkload);
                }
            }
        }
        Ok(())
    }

    /// Number of leaf work units (farm tasks plus stream items) in the whole
    /// expression — the quantity every backend must conserve.
    pub fn work_units(&self) -> usize {
        match self {
            Skeleton::Farm { tasks } => tasks.len(),
            Skeleton::Pipeline { items, .. } | Skeleton::PipelineOf { items, .. } => *items,
            Skeleton::FarmOf { children } => children.iter().map(Skeleton::work_units).sum(),
        }
    }

    /// Total computational weight (work units × their cost) of the whole
    /// expression.  Replication does not reduce total work — it spreads it.
    pub fn total_work(&self) -> f64 {
        match self {
            Skeleton::Farm { tasks } => tasks.iter().map(|t| t.work).sum(),
            Skeleton::Pipeline { stages, items } => {
                *items as f64 * stages.iter().map(|s| s.work_per_item).sum::<f64>()
            }
            Skeleton::PipelineOf { stages, items } => {
                *items as f64 * stages.iter().map(|s| s.spec.work_per_item).sum::<f64>()
            }
            Skeleton::FarmOf { children } => children.iter().map(Skeleton::total_work).sum(),
        }
    }

    /// Total bytes moved by the whole expression.
    pub fn total_bytes(&self) -> u64 {
        match self {
            Skeleton::Farm { tasks } => tasks.iter().map(TaskSpec::total_bytes).sum(),
            Skeleton::Pipeline { stages, items } => {
                *items as u64 * stages.iter().map(|s| s.forward_bytes).sum::<u64>()
            }
            Skeleton::PipelineOf { stages, items } => {
                *items as u64 * stages.iter().map(|s| s.spec.forward_bytes).sum::<u64>()
            }
            Skeleton::FarmOf { children } => children.iter().map(Skeleton::total_bytes).sum(),
        }
    }

    /// Derive the composition's intrinsic properties bottom-up.
    ///
    /// `ratio_of(work, bytes)` converts a leaf's computational weight and
    /// data volume into a computation/communication ratio for the target
    /// environment (backends supply their own; [`Skeleton::properties`] uses
    /// a reference environment).  Interior nodes combine their children with
    /// the property algebra of
    /// [`SkeletonProperties::compose_farm`] / [`compose_pipeline`]
    /// (work-weighted ratio, outer structure dictating rebalancing).
    ///
    /// [`compose_pipeline`]: SkeletonProperties::compose_pipeline
    pub fn properties_with(&self, ratio_of: &dyn Fn(f64, u64) -> f64) -> SkeletonProperties {
        match self {
            Skeleton::Farm { tasks } => {
                let n = tasks.len().max(1) as f64;
                let mean_work = self.total_work() / n;
                let mean_bytes = (self.total_bytes() as f64 / n) as u64;
                SkeletonProperties::task_farm(ratio_of(mean_work, mean_bytes))
            }
            Skeleton::Pipeline { stages, .. } => {
                let work: f64 = stages.iter().map(|s| s.work_per_item).sum();
                let bytes: u64 = stages.iter().map(|s| s.forward_bytes).sum();
                let stateful = stages.iter().any(|s| s.state_bytes > 0);
                SkeletonProperties::pipeline(ratio_of(work, bytes), stateful)
            }
            Skeleton::FarmOf { children } => {
                let parts: Vec<(SkeletonProperties, f64)> = children
                    .iter()
                    .map(|c| (c.properties_with(ratio_of), c.total_work()))
                    .collect();
                SkeletonProperties::compose_farm(&parts)
            }
            Skeleton::PipelineOf { stages, .. } => {
                let parts: Vec<(SkeletonProperties, f64)> = stages
                    .iter()
                    .map(|s| {
                        let ratio = ratio_of(s.spec.work_per_item, s.spec.forward_bytes);
                        let p = if s.replicas > 1 {
                            // A farmed stage behaves like an inner task farm:
                            // items entering it may be served by any replica.
                            SkeletonProperties::task_farm(ratio)
                        } else {
                            SkeletonProperties::pipeline(ratio, s.spec.state_bytes > 0)
                        };
                        (p, s.spec.work_per_item)
                    })
                    .collect();
                SkeletonProperties::compose_pipeline(&parts)
            }
        }
    }

    /// [`Skeleton::properties_with`] against the reference environment: a
    /// unit-speed node on the reference (LAN) link.
    pub fn properties(&self) -> SkeletonProperties {
        self.properties_with(&|work, bytes| reference_ratio(1.0, work, bytes))
    }

    /// Lower the expression to a flat farm-task list plus the [`UnitSpan`]
    /// tree mapping global unit ids back onto the expression's children.
    ///
    /// Lowering rules (shared by every backend so unit counts agree):
    /// * a leaf farm contributes its tasks **with their original ids** when
    ///   it is the whole expression, and re-numbered globally inside a
    ///   composition;
    /// * a (nested) pipeline contributes one task per stream item whose work
    ///   is the full per-item stage chain, entering with the first stage's
    ///   forwarded bytes and leaving with the last stage's;
    /// * `FarmOf` concatenates its children's units — the outer farm may
    ///   dispatch any child unit to any worker (the composition inherits the
    ///   farm's `AnyTaskAnyWorker` rebalancing rule).
    pub fn lower_to_farm(&self) -> (Vec<TaskSpec>, Vec<UnitSpan>) {
        if let Skeleton::Farm { tasks } = self {
            return (tasks.clone(), Vec::new());
        }
        let mut tasks = Vec::with_capacity(self.work_units());
        let span = self.lower_into(&mut tasks);
        let spans = match self {
            Skeleton::FarmOf { .. } => span.children,
            _ => vec![span],
        };
        (tasks, spans)
    }

    fn lower_into(&self, out: &mut Vec<TaskSpec>) -> UnitSpan {
        let start = out.len();
        let mut children = Vec::new();
        match self {
            Skeleton::Farm { tasks } => {
                for t in tasks {
                    let id = out.len();
                    out.push(TaskSpec::new(id, t.work, t.input_bytes, t.output_bytes));
                }
            }
            Skeleton::Pipeline { stages, items } => {
                lower_chain(
                    out,
                    *items,
                    stages.iter().map(|s| s.work_per_item).sum(),
                    stages.first().map(|s| s.forward_bytes).unwrap_or(0),
                    stages.last().map(|s| s.forward_bytes).unwrap_or(0),
                );
            }
            Skeleton::PipelineOf { stages, items } => {
                lower_chain(
                    out,
                    *items,
                    stages.iter().map(|s| s.spec.work_per_item).sum(),
                    stages.first().map(|s| s.spec.forward_bytes).unwrap_or(0),
                    stages.last().map(|s| s.spec.forward_bytes).unwrap_or(0),
                );
            }
            Skeleton::FarmOf { children: kids } => {
                for c in kids {
                    children.push(c.lower_into(out));
                }
            }
        }
        UnitSpan {
            kind: self.kind(),
            start,
            count: out.len() - start,
            children,
        }
    }

    /// The pipeline view of a pipeline-shaped expression: the raw stage
    /// specs, their replica counts and the stream length.  `None` for
    /// farm-shaped expressions.
    pub fn pipeline_plan(&self) -> Option<(Vec<StageSpec>, Vec<usize>, usize)> {
        match self {
            Skeleton::Pipeline { stages, items } => {
                Some((stages.clone(), vec![1; stages.len()], *items))
            }
            Skeleton::PipelineOf { stages, items } => Some((
                stages.iter().map(|s| s.spec).collect(),
                stages.iter().map(|s| s.replicas).collect(),
                *items,
            )),
            _ => None,
        }
    }
}

/// One task per stream item, carrying the whole per-item stage chain.
fn lower_chain(out: &mut Vec<TaskSpec>, items: usize, work: f64, in_bytes: u64, out_bytes: u64) {
    for _ in 0..items {
        let id = out.len();
        out.push(TaskSpec::new(id, work, in_bytes, out_bytes));
    }
}

/// Computation/communication ratio of `work` units at `speed` work-units/s
/// against shipping `bytes` over the reference (LAN) link.
pub fn reference_ratio(speed: f64, work: f64, bytes: u64) -> f64 {
    let compute_s = work / speed.max(1e-9);
    let comm_s = gridsim::LinkSpec::lan().transfer_time(bytes, 1.0).max(1e-9);
    (compute_s / comm_s).max(1e-3)
}

/// Backend-neutral account of the fault-tolerance work a run performed.
///
/// Every backend survives executor loss in its own way — the simulated grid
/// requeues the chunks of revoked nodes and migrates pipeline stages, the
/// thread backend isolates worker panics and retries the affected tasks on
/// surviving workers — but the *outcome-level* questions are the same: how
/// much work had to be given back, re-executed, or moved, and how many
/// executors were lost doing it.  The counters are overlapping views of the
/// same recovery activity (a requeued task is usually also a retried task),
/// not disjoint event classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Tasks returned to the pending pool after their executor was lost
    /// mid-flight (sim: chunks of revoked nodes; threads: panicked tasks
    /// handed back for another worker).
    pub requeued_tasks: usize,
    /// Tasks that were executed again after a failed first attempt and
    /// ultimately completed.
    pub retried_tasks: usize,
    /// Pipeline stages remapped/migrated to a different executor.
    pub migrated_stages: usize,
    /// Executors permanently removed from the run (sim: revoked nodes
    /// dropped from the active set; threads: workers retired after
    /// exhausting their panic budget).
    pub nodes_lost: usize,
    /// In-flight units speculatively duplicated on idle workers near the
    /// tail (straggler speculation; each unit is duplicated at most once).
    pub speculated_units: usize,
    /// Speculative duplicates whose result arrived first and won the race
    /// (the straggler's copy was discarded on arrival).
    pub speculation_wins: usize,
}

impl ResilienceReport {
    /// `true` when the run needed no fault handling at all.  Speculation is
    /// proactive adaptation rather than fault *handling*, so the
    /// speculation counters do not dirty a run: a job whose tail was
    /// rescued by duplicates but that never lost, requeued, or retried
    /// anything is still clean.
    pub fn is_clean(&self) -> bool {
        self.requeued_tasks == 0
            && self.retried_tasks == 0
            && self.migrated_stages == 0
            && self.nodes_lost == 0
    }

    /// Total recovery **and adaptation** events across all counters
    /// (overlapping views are summed — useful only as a "did anything
    /// happen" magnitude).
    pub fn total_events(&self) -> usize {
        self.requeued_tasks
            + self.retried_tasks
            + self.migrated_stages
            + self.nodes_lost
            + self.speculated_units
            + self.speculation_wins
    }
}

/// How a network worker ended its pool membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDeparture {
    /// The worker announced a Goodbye, drained its outstanding window and
    /// was released — no units were lost and nothing was requeued.
    Graceful,
    /// The connection died (socket EOF, frame corruption, or a heartbeat
    /// timeout) with the worker still owing work; its in-flight units were
    /// requeued and the loss counted in the [`ResilienceReport`].
    Death,
}

/// One worker's membership record in a network run (dynamic-membership
/// audit: who joined when, whether it was ranked by a calibration prefix,
/// and how it left — if it left).
#[derive(Debug, Clone)]
pub struct NetMemberReport {
    /// The pool slot the master assigned (never reused within a run).
    pub worker: usize,
    /// OS process id the worker reported in its Join frame.
    pub pid: u64,
    /// Master-clock seconds from run start to admission.
    pub joined_s: f64,
    /// `true` when the worker was admitted after dispatch had begun — the
    /// dynamic-membership path, where real units are withheld until the
    /// calibration prefix completes.
    pub joined_mid_run: bool,
    /// Calibration probe units the worker executed before receiving real
    /// units (0 for founding members, whose calibration rides on the job's
    /// own leading units).
    pub calibration_probes: usize,
    /// Real units this worker completed.
    pub units_completed: usize,
    /// How the worker left the pool; `None` when it was still a member at
    /// job completion.
    pub left: Option<NetDeparture>,
}

/// The backend's rich native report for the root of an executed skeleton,
/// when it exposes one.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum OutcomeDetail {
    /// No backend-specific detail.
    None,
    /// The simulated farm engine's full outcome.
    SimFarm(Box<FarmOutcome>),
    /// The simulated pipeline engine's full outcome.
    SimPipeline(Box<PipelineOutcome>),
    /// Thread-farm summary from the shared-memory backend.
    ThreadFarm {
        /// Worker threads used.
        workers: usize,
        /// Tasks completed per worker.
        tasks_per_worker: Vec<usize>,
        /// Declared work units each worker executed (successful attempts
        /// only).  The maximum over workers is the schedule's work critical
        /// path: proportional to the makespan on a dedicated machine with at
        /// least `workers` uniform cores.  Unlike wall-clock (which
        /// serialises on an overcommitted machine) or measured busy time
        /// (which counts preemption), this is schedule-sensitive on any
        /// hardware.
        work_per_worker: Vec<f64>,
        /// Per-worker external-load estimate at run end (0 = running at the
        /// calibrated baseline, → 1 = heavily slowed), forecast by the
        /// gridmon registry from the workers' wall-clock per-work-unit
        /// observations.  All zeros when the adaptation engine was off.
        load_per_worker: Vec<f64>,
        /// Steal attempts by idle workers (work-stealing policy only —
        /// zero under every other scheduler; a chosen victim whose deque
        /// drained first still counts as attempted).
        steals_attempted: usize,
        /// Steal attempts that actually moved a range between deques.
        steals_completed: usize,
        /// Task units moved between deques by completed steals — with the
        /// attempt counters, the price sheet for E16's steal-overhead
        /// accounting.
        units_stolen: usize,
    },
    /// Thread-pipeline summary from the shared-memory backend.
    ThreadPipeline {
        /// Index of the slowest stage.
        bottleneck_stage: usize,
        /// Worker threads per stage.
        replicas_per_stage: Vec<usize>,
    },
    /// Process-farm summary from the process-isolated backend
    /// (`grasp-proc`): the serialization boundary is real there, so the
    /// report carries wire accounting alongside the schedule.
    ProcFarm {
        /// Worker processes spawned.
        workers: usize,
        /// Units completed per worker process.
        tasks_per_worker: Vec<usize>,
        /// Bytes of frames written to the workers (tasks, init, shutdown).
        bytes_sent: u64,
        /// Bytes of frames received from the workers (hellos, results,
        /// heartbeats).
        bytes_received: u64,
        /// Wall seconds the writer threads spent encoding and writing
        /// frames (aggregate across workers) — the run's serialization cost.
        wire_write_s: f64,
        /// Wall seconds of that spent *encoding* frames (the rest is the
        /// transport write itself).
        wire_encode_s: f64,
        /// Payload bytes copied beyond the one encode per frame (0 in
        /// steady state on the stream, TCP, and shm transports).
        bytes_copied: u64,
        /// Per-unit result digests reported by the workers, sorted by unit
        /// id (all zero for spin payloads).  Lets callers verify that a
        /// worker's computation matches a locally computed reference.
        unit_digests: Vec<(usize, u64)>,
    },
    /// Network-farm summary from the socket backend (`grasp-net`): the
    /// process backend's wire accounting plus the dynamic-membership audit.
    NetFarm {
        /// Workers ever admitted to the pool (including ones that later
        /// left; slots are never reused).
        workers: usize,
        /// Units completed per admitted worker.
        tasks_per_worker: Vec<usize>,
        /// Connections refused at the handshake (version or capability
        /// mismatch, or a peer that never sent a valid Join).
        rejected_joins: usize,
        /// Bytes of frames written to the workers.
        bytes_sent: u64,
        /// Bytes of frames received from the workers.
        bytes_received: u64,
        /// Wall seconds the writer threads spent encoding and writing
        /// frames (aggregate across workers).
        wire_write_s: f64,
        /// Wall seconds of that spent *encoding* frames.
        wire_encode_s: f64,
        /// Payload bytes copied beyond the one encode per frame (the
        /// loopback transport's channel hand-off; 0 on TCP).
        bytes_copied: u64,
        /// Per-unit result digests, sorted by unit id.
        unit_digests: Vec<(usize, u64)>,
        /// Per-member membership audit, in admission order.
        members: Vec<NetMemberReport>,
    },
    /// Multi-job service summary (`grasp-service`): how this job rode the
    /// resident pool — who it shared its dispatch round with and how much
    /// of its calibration was served from the cross-job profile cache.
    Service {
        /// Service-assigned job id (unique for the service's lifetime).
        job: u64,
        /// Jobs sharing this job's dispatch round (including itself).
        batched_jobs: usize,
        /// `(worker, payload kind)` calibration profiles reused from the
        /// service's cache instead of being re-measured for this round.
        profile_hits: usize,
        /// Calibration profiles measured fresh during this round.
        profile_misses: usize,
        /// Resident pool workers the round could dispatch to.
        workers: usize,
        /// Units this job completed per pool worker.
        tasks_per_worker: Vec<usize>,
        /// Steal attempts during this job's dispatch round (work-stealing
        /// rounds only; round-level, shared by every job in the batch).
        steals_attempted: usize,
        /// Steal attempts that moved units during this job's round.
        steals_completed: usize,
        /// Units moved between workers by steals during this job's round.
        units_stolen: usize,
    },
}

/// Backend-neutral result of running a [`Skeleton`]: what completed, how
/// long it took (in the backend's clock — virtual seconds for the simulated
/// grid, wall-clock seconds for real threads), and one child outcome per
/// sub-skeleton of a composition.
#[derive(Debug, Clone)]
pub struct SkeletonOutcome {
    /// Structural kind of the skeleton (sub-)tree this outcome describes.
    pub kind: SkeletonKind,
    /// Leaf work units completed at or below this node.
    pub completed: usize,
    /// Global ids of the completed units (sorted, exactly once each).
    pub unit_ids: Vec<usize>,
    /// Seconds from job start to the last completion.
    pub makespan_s: f64,
    /// Seconds consumed by the calibration phase (0 for child outcomes — the
    /// composition calibrates once, as one unit).
    pub calibration_s: f64,
    /// The full audit trail of adaptation actions taken while this
    /// (sub-)skeleton ran: recalibrations, demotions, losses, stage
    /// remaps/replications, in the executing engine's clock.  Uniformly
    /// populated by every backend (job-level: child outcomes carry an empty
    /// log, like [`SkeletonOutcome::resilience`]).  The total count is
    /// [`SkeletonOutcome::adaptations`].
    pub adaptation_log: AdaptationLog,
    /// Fault-tolerance accounting for the whole run (job-level: child
    /// outcomes carry an empty report, because recovery happens at the
    /// executing engine's level, not per sub-skeleton).
    pub resilience: ResilienceReport,
    /// Per-child outcomes of a composition (empty for leaves).
    pub children: Vec<SkeletonOutcome>,
    /// The backend's native report, when it exposes one.
    pub detail: OutcomeDetail,
}

impl SkeletonOutcome {
    /// Number of adaptation actions taken while this (sub-)skeleton ran —
    /// derived from [`SkeletonOutcome::adaptation_log`], so the count can
    /// never drift from the audit trail.
    pub fn adaptations(&self) -> usize {
        self.adaptation_log.len()
    }

    /// Completed units per second over the whole run.
    pub fn throughput(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_s
        }
    }

    /// Check the conservation invariant against the expression that
    /// produced this outcome: every leaf unit completed exactly once (the
    /// sorted id list must be strictly increasing — no duplicates), and the
    /// children of every composition account for their parent's units.
    pub fn conserves_units_of(&self, skeleton: &Skeleton) -> bool {
        if self.completed != skeleton.work_units() || self.unit_ids.len() != self.completed {
            return false;
        }
        if !self.unit_ids.windows(2).all(|w| w[0] < w[1]) {
            return false;
        }
        if let Skeleton::FarmOf { children } = skeleton {
            if self.children.len() != children.len() {
                return false;
            }
            let child_sum: usize = self.children.iter().map(|c| c.completed).sum();
            if child_sum != self.completed {
                return false;
            }
            return self
                .children
                .iter()
                .zip(children)
                .all(|(o, s)| o.conserves_units_of(s));
        }
        true
    }
}

/// An execution environment for skeleton expressions: the compilation /
/// calibration / execution phases of Figure 1 behind one trait.
///
/// `compile` is the static compilation phase (bind and validate the
/// expression against the backend's environment); `execute` runs calibration
/// (Algorithm 1) followed by adaptive execution (Algorithm 2) and returns
/// the unified outcome.  `Grasp::run` drives the full life-cycle.
pub trait Backend {
    /// The compiled (environment-bound) form of a skeleton.
    type Compiled;

    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Compilation phase: statically validate `skeleton` and bind it to this
    /// backend's environment.  No calibration feedback is available yet.
    fn compile(
        &self,
        config: &GraspConfig,
        skeleton: &Skeleton,
    ) -> Result<Self::Compiled, GraspError>;

    /// Calibration + execution phases over a compiled skeleton.
    fn execute(
        &self,
        config: &GraspConfig,
        compiled: &Self::Compiled,
    ) -> Result<SkeletonOutcome, GraspError>;
}

/// The simulated-grid backend: wraps the gridsim farm/pipeline engines
/// behind the [`Backend`] trait.
#[derive(Clone)]
pub struct SimBackend<'g> {
    grid: &'g Grid,
    candidates: Vec<NodeId>,
}

impl<'g> SimBackend<'g> {
    /// A backend over every node of `grid`.
    pub fn new(grid: &'g Grid) -> Self {
        let candidates = grid.node_ids();
        SimBackend { grid, candidates }
    }

    /// A backend over an explicit candidate node pool.
    pub fn on(grid: &'g Grid, candidates: &[NodeId]) -> Self {
        SimBackend {
            grid,
            candidates: candidates.to_vec(),
        }
    }

    /// The grid this backend executes on.
    pub fn grid(&self) -> &Grid {
        self.grid
    }

    /// The candidate node pool.
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    fn ratio_of(&self, work: f64, bytes: u64) -> f64 {
        reference_ratio(self.grid.topology().max_speed(), work, bytes)
    }

    fn farm_outcome(
        kind: SkeletonKind,
        outcome: FarmOutcome,
        spans: &[UnitSpan],
    ) -> SkeletonOutcome {
        let mut unit_ids: Vec<usize> = outcome.task_outcomes.iter().map(|o| o.task).collect();
        unit_ids.sort_unstable();
        // A task lost to a revoked node and later re-executed may in
        // principle surface more than one completion record; the
        // backend-neutral view counts each unit once (the engine-native
        // record in `detail` keeps every raw completion), which is what lets
        // `conserves_units_of` hold under loss + retry.
        unit_ids.dedup();
        // One pass over the outcomes builds the id → completion-time table
        // every span shares (a lost-then-requeued task keeps its latest
        // completion).
        let mut completions: std::collections::BTreeMap<usize, f64> =
            std::collections::BTreeMap::new();
        for o in &outcome.task_outcomes {
            let t = o.completed.as_secs();
            completions
                .entry(o.task)
                .and_modify(|cur| *cur = cur.max(t))
                .or_insert(t);
        }
        let children = spans.iter().map(|s| s.outcome_from(&completions)).collect();
        let requeued = outcome.adaptation.requeued_tasks();
        let resilience = ResilienceReport {
            requeued_tasks: requeued,
            // Every requeued task that made it into the outcome was executed
            // again on a surviving node.
            retried_tasks: requeued,
            migrated_stages: 0,
            speculated_units: outcome.adaptation.speculations(),
            speculation_wins: outcome.adaptation.speculation_wins(),
            nodes_lost: outcome.adaptation.node_losses(),
        };
        SkeletonOutcome {
            kind,
            completed: unit_ids.len(),
            unit_ids,
            makespan_s: outcome.makespan.as_secs(),
            calibration_s: outcome.calibration.duration.as_secs(),
            adaptation_log: outcome.adaptation.clone(),
            resilience,
            children,
            detail: OutcomeDetail::SimFarm(Box::new(outcome)),
        }
    }

    fn pipeline_outcome(kind: SkeletonKind, outcome: PipelineOutcome) -> SkeletonOutcome {
        let resilience = ResilienceReport {
            requeued_tasks: 0,
            retried_tasks: 0,
            migrated_stages: outcome.adaptation.stage_remaps()
                + outcome.adaptation.stage_migrations(),
            nodes_lost: 0,
            speculated_units: 0,
            speculation_wins: 0,
        };
        SkeletonOutcome {
            kind,
            completed: outcome.items,
            unit_ids: (0..outcome.items).collect(),
            makespan_s: outcome.makespan.as_secs(),
            calibration_s: outcome.calibration.duration.as_secs(),
            adaptation_log: outcome.adaptation.clone(),
            resilience,
            children: Vec::new(),
            detail: OutcomeDetail::SimPipeline(Box::new(outcome)),
        }
    }
}

/// A skeleton bound to the simulated grid, ready to calibrate and execute.
#[derive(Debug, Clone)]
pub struct SimCompiled {
    plan: SimPlan,
    properties: SkeletonProperties,
}

impl SimCompiled {
    /// The composed intrinsic properties the execution will be steered by.
    pub fn properties(&self) -> &SkeletonProperties {
        &self.properties
    }
}

#[derive(Debug, Clone)]
enum SimPlan {
    /// Farm-shaped: a flat task list plus the span tree of the composition.
    Farm {
        tasks: Vec<TaskSpec>,
        spans: Vec<UnitSpan>,
    },
    /// Pipeline-shaped: effective stages (a farmed stage's per-item work is
    /// divided by its replica count — replication multiplies the stage's
    /// service capacity, which the sequential-per-stage simulation models as
    /// a proportionally shorter per-item service time) and the stream length.
    Pipeline {
        stages: Vec<StageSpec>,
        items: usize,
    },
}

impl Backend for SimBackend<'_> {
    type Compiled = SimCompiled;

    fn name(&self) -> &'static str {
        "sim"
    }

    fn compile(
        &self,
        config: &GraspConfig,
        skeleton: &Skeleton,
    ) -> Result<Self::Compiled, GraspError> {
        config.validate()?;
        skeleton.validate()?;
        if self.candidates.is_empty() {
            return Err(GraspError::NoUsableNodes);
        }
        let properties = skeleton.properties_with(&|w, b| self.ratio_of(w, b));
        let plan = match skeleton.pipeline_plan() {
            Some((stages, replicas, items)) => {
                let stages = stages
                    .iter()
                    .zip(&replicas)
                    .map(|(s, &r)| {
                        StageSpec::new(
                            s.id,
                            s.work_per_item / r.max(1) as f64,
                            s.forward_bytes,
                            s.state_bytes,
                        )
                    })
                    .collect();
                SimPlan::Pipeline { stages, items }
            }
            None => {
                let (tasks, spans) = skeleton.lower_to_farm();
                SimPlan::Farm { tasks, spans }
            }
        };
        Ok(SimCompiled { plan, properties })
    }

    fn execute(
        &self,
        config: &GraspConfig,
        compiled: &Self::Compiled,
    ) -> Result<SkeletonOutcome, GraspError> {
        match &compiled.plan {
            SimPlan::Farm { tasks, spans } => {
                let farm = TaskFarm::new(*config).with_properties(compiled.properties);
                let outcome = farm.run_on(self.grid, &self.candidates, tasks)?;
                Ok(Self::farm_outcome(compiled.properties.kind, outcome, spans))
            }
            SimPlan::Pipeline { stages, items } => {
                let pipeline = Pipeline::new(*config).with_properties(compiled.properties);
                let outcome = pipeline.run_on(self.grid, &self.candidates, stages, *items)?;
                Ok(Self::pipeline_outcome(compiled.properties.kind, outcome))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::Rebalancing;
    use gridsim::TopologyBuilder;

    fn imaging_like_pipeline(items: usize) -> Skeleton {
        Skeleton::pipeline(StageSpec::balanced(3, 10.0, 8 * 1024), items)
    }

    #[test]
    fn kinds_collapse_when_composition_is_degenerate() {
        let farm = Skeleton::farm(TaskSpec::uniform(4, 1.0, 0, 0));
        assert_eq!(farm.kind(), SkeletonKind::TaskFarm);
        let farm_of_farms = Skeleton::farm_of(vec![farm.clone(), farm.clone()]);
        assert_eq!(farm_of_farms.kind(), SkeletonKind::TaskFarm);
        let fop = Skeleton::farm_of(vec![farm, imaging_like_pipeline(3)]);
        assert_eq!(fop.kind(), SkeletonKind::FarmOfPipelines);
        let plain = Skeleton::pipeline_of(
            StageSpec::balanced(2, 5.0, 0)
                .into_iter()
                .map(FarmedStage::plain)
                .collect(),
            4,
        );
        assert_eq!(plain.kind(), SkeletonKind::Pipeline);
        let pof = Skeleton::pipeline_of(
            vec![
                FarmedStage::plain(StageSpec::new(0, 5.0, 0, 0)),
                FarmedStage::farmed(StageSpec::new(1, 20.0, 0, 0), 4),
            ],
            4,
        );
        assert_eq!(pof.kind(), SkeletonKind::PipelineOfFarms);
    }

    #[test]
    fn work_units_count_leaves_recursively() {
        let s = Skeleton::farm_of(vec![
            imaging_like_pipeline(7),
            Skeleton::farm(TaskSpec::uniform(5, 1.0, 0, 0)),
            Skeleton::farm_of(vec![imaging_like_pipeline(2)]),
        ]);
        assert_eq!(s.work_units(), 14);
        assert!(s.total_work() > 0.0);
    }

    #[test]
    fn validation_rejects_empty_leaves_anywhere_in_the_tree() {
        assert!(Skeleton::farm(vec![]).validate().is_err());
        assert!(Skeleton::pipeline(vec![], 3).validate().is_err());
        assert!(Skeleton::pipeline(StageSpec::balanced(2, 1.0, 0), 0)
            .validate()
            .is_err());
        assert!(Skeleton::farm_of(vec![]).validate().is_err());
        let nested_bad = Skeleton::farm_of(vec![imaging_like_pipeline(2), Skeleton::farm(vec![])]);
        assert!(nested_bad.validate().is_err());
        assert!(Skeleton::pipeline_of(vec![], 2).validate().is_err());
    }

    #[test]
    fn properties_compose_bottom_up() {
        let fop = Skeleton::farm_of(vec![imaging_like_pipeline(4), imaging_like_pipeline(4)]);
        let p = fop.properties();
        assert_eq!(p.kind, SkeletonKind::FarmOfPipelines);
        assert!(p.independent_tasks, "outer farm instances are independent");
        assert_eq!(p.rebalancing, Rebalancing::AnyTaskAnyWorker);

        let pof = Skeleton::pipeline_of(
            vec![
                FarmedStage::plain(StageSpec::new(0, 5.0, 1024, 0)),
                FarmedStage::farmed(StageSpec::new(1, 50.0, 1024, 0), 4),
            ],
            10,
        );
        let p = pof.properties();
        assert_eq!(p.kind, SkeletonKind::PipelineOfFarms);
        assert!(p.ordered_results);
        assert_eq!(p.rebalancing, Rebalancing::StageRemapping);
    }

    #[test]
    fn lowering_conserves_units_and_renumbers_globally() {
        let s = Skeleton::farm_of(vec![
            Skeleton::farm(TaskSpec::uniform(3, 2.0, 64, 64)),
            imaging_like_pipeline(5),
        ]);
        let (tasks, spans) = s.lower_to_farm();
        assert_eq!(tasks.len(), 8);
        let ids: Vec<usize> = tasks.iter().map(|t| t.id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].count, 3);
        assert_eq!(spans[1].start, 3);
        assert_eq!(spans[1].count, 5);
        // The lowered pipeline items carry the whole per-item stage chain.
        assert!((tasks[3].work - 30.0).abs() < 1e-9);
    }

    #[test]
    fn leaf_farm_lowering_preserves_original_ids() {
        let mut tasks = TaskSpec::uniform(4, 1.0, 0, 0);
        tasks.reverse(); // ids now 3, 2, 1, 0
        let s = Skeleton::farm(tasks.clone());
        let (lowered, spans) = s.lower_to_farm();
        assert_eq!(lowered, tasks);
        assert!(spans.is_empty());
    }

    #[test]
    fn sim_backend_runs_a_nested_farm_of_pipelines() {
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(6, 20.0, 60.0, 3));
        let skeleton = Skeleton::farm_of(vec![
            imaging_like_pipeline(10),
            imaging_like_pipeline(10),
            Skeleton::farm(TaskSpec::uniform(8, 25.0, 4096, 4096)),
        ]);
        let backend = SimBackend::new(&grid);
        let cfg = GraspConfig::default();
        let compiled = backend.compile(&cfg, &skeleton).unwrap();
        assert_eq!(
            compiled.properties().kind,
            SkeletonKind::FarmOfPipelines,
            "composed properties steer the run"
        );
        let outcome = backend.execute(&cfg, &compiled).unwrap();
        assert_eq!(outcome.completed, 28);
        assert!(outcome.conserves_units_of(&skeleton));
        assert_eq!(outcome.children.len(), 3);
        assert_eq!(outcome.children[2].completed, 8);
        assert!(outcome.makespan_s > 0.0);
        assert!(outcome.throughput() > 0.0);
        assert!(matches!(outcome.detail, OutcomeDetail::SimFarm(_)));
        // Child makespans are bounded by the parent's.
        for c in &outcome.children {
            assert!(c.makespan_s <= outcome.makespan_s + 1e-9);
        }
    }

    #[test]
    fn sim_backend_runs_a_pipeline_of_farms() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(6, 40.0));
        let heavy = StageSpec::new(1, 60.0, 8 * 1024, 0);
        let skeleton = Skeleton::pipeline_of(
            vec![
                FarmedStage::plain(StageSpec::new(0, 10.0, 8 * 1024, 0)),
                FarmedStage::farmed(heavy, 3),
                FarmedStage::plain(StageSpec::new(2, 10.0, 8 * 1024, 0)),
            ],
            30,
        );
        let backend = SimBackend::new(&grid);
        let cfg = GraspConfig::default();
        let compiled = backend.compile(&cfg, &skeleton).unwrap();
        let outcome = backend.execute(&cfg, &compiled).unwrap();
        assert_eq!(outcome.completed, 30);
        assert_eq!(outcome.kind, SkeletonKind::PipelineOfFarms);
        assert!(outcome.conserves_units_of(&skeleton));

        // The farmed heavy stage must not dominate: against the same chain
        // without replication the bottleneck service time drops ~3x.
        let rigid = Skeleton::pipeline(
            vec![
                StageSpec::new(0, 10.0, 8 * 1024, 0),
                StageSpec::new(1, 60.0, 8 * 1024, 0),
                StageSpec::new(2, 10.0, 8 * 1024, 0),
            ],
            30,
        );
        let rigid_out = backend
            .execute(&cfg, &backend.compile(&cfg, &rigid).unwrap())
            .unwrap();
        assert!(
            outcome.makespan_s < rigid_out.makespan_s,
            "replicating the bottleneck stage must help: {} vs {}",
            outcome.makespan_s,
            rigid_out.makespan_s
        );
    }

    #[test]
    fn sim_backend_rejects_empty_pools_and_workloads() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(2, 40.0));
        let cfg = GraspConfig::default();
        let skeleton = Skeleton::farm(TaskSpec::uniform(4, 1.0, 0, 0));
        assert!(matches!(
            SimBackend::on(&grid, &[]).compile(&cfg, &skeleton),
            Err(GraspError::NoUsableNodes)
        ));
        assert!(SimBackend::new(&grid)
            .compile(&cfg, &Skeleton::farm(vec![]))
            .is_err());
    }

    #[test]
    fn conservation_check_rejects_duplicated_and_missing_units() {
        let skeleton = Skeleton::farm(TaskSpec::uniform(3, 1.0, 0, 0));
        let ok = SkeletonOutcome {
            kind: SkeletonKind::TaskFarm,
            completed: 3,
            unit_ids: vec![0, 1, 2],
            makespan_s: 1.0,
            calibration_s: 0.0,
            adaptation_log: AdaptationLog::new(),
            resilience: ResilienceReport::default(),
            children: Vec::new(),
            detail: OutcomeDetail::None,
        };
        assert!(ok.conserves_units_of(&skeleton));
        // A unit completed twice while another was dropped must be caught
        // even though the counts line up.
        let duplicated = SkeletonOutcome {
            unit_ids: vec![0, 0, 2],
            ..ok.clone()
        };
        assert!(!duplicated.conserves_units_of(&skeleton));
        let short = SkeletonOutcome {
            completed: 2,
            unit_ids: vec![0, 1],
            ..ok
        };
        assert!(!short.conserves_units_of(&skeleton));
    }

    #[test]
    fn sim_backend_reports_resilience_under_node_revocation() {
        use gridsim::{FaultPlan, GridBuilder, SimTime};
        let topo = TopologyBuilder::uniform_cluster(4, 30.0);
        // Node 2 dies early and never comes back: its in-flight chunk must be
        // requeued, and the outcome must say so.
        let faults = FaultPlan::none().revoked_from(gridsim::NodeId(2), SimTime::new(5.0));
        let grid = GridBuilder::new(topo).faults(faults).build();
        let skeleton = Skeleton::farm(TaskSpec::uniform(120, 80.0, 8 * 1024, 8 * 1024));
        let backend = SimBackend::new(&grid);
        let cfg = GraspConfig::default();
        let outcome = backend
            .execute(&cfg, &backend.compile(&cfg, &skeleton).unwrap())
            .unwrap();
        assert_eq!(outcome.completed, 120);
        assert!(outcome.conserves_units_of(&skeleton));
        assert!(outcome.resilience.nodes_lost >= 1);
        assert!(outcome.resilience.requeued_tasks >= 1);
        assert_eq!(
            outcome.resilience.retried_tasks,
            outcome.resilience.requeued_tasks
        );
        assert!(!outcome.resilience.is_clean());
        assert!(outcome.resilience.total_events() >= 3);

        // A quiet grid reports a clean run.
        let quiet = Grid::dedicated(TopologyBuilder::uniform_cluster(4, 30.0));
        let backend = SimBackend::new(&quiet);
        let outcome = backend
            .execute(&cfg, &backend.compile(&cfg, &skeleton).unwrap())
            .unwrap();
        assert!(outcome.resilience.is_clean());
    }

    #[test]
    fn reference_ratio_scales_with_speed_and_bytes() {
        let fast = reference_ratio(10.0, 100.0, 1024);
        let slow = reference_ratio(1.0, 100.0, 1024);
        assert!(slow > fast, "slower nodes make compute relatively costlier");
        let chatty = reference_ratio(1.0, 100.0, 64 << 20);
        assert!(chatty < slow, "more bytes lower the ratio");
    }
}
