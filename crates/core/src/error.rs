//! Error type for the GRASP layers.

use std::fmt;

/// Errors surfaced by calibration, execution and the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum GraspError {
    /// The skeleton was given no work.
    EmptyWorkload,
    /// The grid offers no usable node for the requested execution.
    NoUsableNodes,
    /// A pipeline was declared with no stages.
    EmptyPipeline,
    /// Calibration could not produce a ranking (e.g. every node is down).
    CalibrationFailed(String),
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// A task could not be completed on any node within the simulation horizon.
    TaskLost {
        /// Identifier of the lost task.
        task: usize,
    },
    /// A worker failed (panicked) while executing a task and the bounded
    /// retry budget was exhausted without the task ever completing.
    WorkerFailed {
        /// Identifier (global unit index) of the failing task.
        task: usize,
        /// How many execution attempts were made before giving up.
        attempts: usize,
    },
    /// A frame on the worker wire protocol was truncated, corrupted, or
    /// malformed (see `grasp_core::wire`).
    WireProtocol {
        /// What exactly was wrong with the frame.
        detail: String,
    },
    /// Worker processes could not be spawned or the whole pool was lost
    /// before the job completed.
    WorkerUnavailable {
        /// Why no worker could serve the job.
        detail: String,
    },
    /// A multi-job service refused the submission because its bounded
    /// admission backlog was full.  The job was never queued: resubmit
    /// later, or submit at a higher priority.
    Rejected {
        /// Jobs already waiting when the submission was refused.
        backlog: usize,
        /// The backlog bound that was hit.
        capacity: usize,
    },
}

impl fmt::Display for GraspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraspError::EmptyWorkload => write!(f, "the skeleton was given no tasks"),
            GraspError::NoUsableNodes => write!(f, "no usable nodes available in the grid"),
            GraspError::EmptyPipeline => write!(f, "a pipeline needs at least one stage"),
            GraspError::CalibrationFailed(why) => write!(f, "calibration failed: {why}"),
            GraspError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            GraspError::TaskLost { task } => write!(f, "task {task} could not be completed"),
            GraspError::WorkerFailed { task, attempts } => write!(
                f,
                "task {task} failed on every worker after {attempts} attempts"
            ),
            GraspError::WireProtocol { detail } => write!(f, "wire protocol error: {detail}"),
            GraspError::WorkerUnavailable { detail } => {
                write!(f, "worker pool unavailable: {detail}")
            }
            GraspError::Rejected { backlog, capacity } => write!(
                f,
                "submission rejected: admission backlog full ({backlog} of {capacity} slots taken)"
            ),
        }
    }
}

impl std::error::Error for GraspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(GraspError::EmptyWorkload.to_string().contains("no tasks"));
        assert!(GraspError::NoUsableNodes
            .to_string()
            .contains("no usable nodes"));
        assert!(GraspError::EmptyPipeline.to_string().contains("stage"));
        assert!(GraspError::CalibrationFailed("x".into())
            .to_string()
            .contains("x"));
        assert!(GraspError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(GraspError::TaskLost { task: 3 }.to_string().contains('3'));
        let failed = GraspError::WorkerFailed {
            task: 7,
            attempts: 3,
        }
        .to_string();
        assert!(failed.contains('7') && failed.contains('3'));
        assert!(GraspError::WireProtocol {
            detail: "bad magic".into()
        }
        .to_string()
        .contains("bad magic"));
        assert!(GraspError::WorkerUnavailable {
            detail: "spawn failed".into()
        }
        .to_string()
        .contains("spawn failed"));
        let rejected = GraspError::Rejected {
            backlog: 8,
            capacity: 8,
        }
        .to_string();
        assert!(rejected.contains("rejected") && rejected.contains('8'));
    }
}
