//! Property-based tests over the GRASP core: calibration, monitor, adaptation
//! bookkeeping and configuration validation.

use grasp_core::calibration::Calibrator;
use grasp_core::execution::ExecutionMonitor;
use grasp_core::prelude::*;
use gridmon::MonitorRegistry;
use gridsim::{Grid, NodeId, SimTime, TopologyBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Calibration on a dedicated pool always selects the requested fraction
    /// (rounded up, floored by min_nodes) and ranks fastest-first.
    #[test]
    fn calibration_selects_the_requested_fraction(
        nodes in 2usize..24,
        fraction in 0.1f64..1.0,
        min_nodes in 1usize..4,
        seed in any::<u64>(),
    ) {
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(nodes, 10.0, 90.0, seed));
        let tasks = TaskSpec::uniform(nodes * 2, 40.0, 1024, 1024);
        let cfg = CalibrationConfig {
            samples_per_node: 1,
            selection_fraction: fraction,
            min_nodes,
            ..CalibrationConfig::default()
        };
        let mut registry = MonitorRegistry::new(NodeId(0), 32);
        let report = Calibrator::new(cfg)
            .calibrate(&grid, &mut registry, &grid.node_ids(), &tasks, NodeId(0), SimTime::ZERO)
            .unwrap();
        let expected = ((nodes as f64 * fraction).ceil() as usize)
            .max(min_nodes)
            .min(nodes);
        prop_assert_eq!(report.chosen.len(), expected);
        // Ranking is fastest-first: adjusted times must be non-decreasing.
        let times: Vec<f64> = report
            .ranking
            .iter()
            .map(|n| report.table.iter().find(|c| c.node == *n).unwrap().adjusted_time)
            .collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        // Chosen nodes are exactly the ranking prefix.
        prop_assert_eq!(&report.chosen[..], &report.ranking[..expected]);
    }

    /// The execution monitor recalibrates exactly when the minimum recent
    /// mean exceeds the threshold.
    #[test]
    fn monitor_verdict_matches_definition(
        times in prop::collection::vec((0usize..6, 0.01f64..20.0), 1..60),
        threshold in 0.1f64..10.0,
    ) {
        let mut monitor = ExecutionMonitor::new(threshold, 1.0, 3.0);
        for (node, t) in &times {
            monitor.record(NodeId(*node), *t);
        }
        let verdict = monitor.evaluate(SimTime::new(10.0)).unwrap();
        let min_mean = verdict
            .per_node_mean
            .iter()
            .map(|(_, m)| *m)
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(verdict.recalibrate, min_mean > threshold);
        for node in &verdict.demote {
            let m = verdict.per_node_mean.iter().find(|(n, _)| n == node).unwrap().1;
            prop_assert!(m > threshold * 3.0);
        }
    }

    /// Algorithm 2's verdicts are monotone in the observed times: worsening
    /// every observation can never un-breach the threshold (`min T > Z`
    /// stays true when every per-node mean grows), and the demote set can
    /// only grow.  Exercised through the backend-neutral engine so the
    /// property covers exactly the loop both backends run.
    #[test]
    fn threshold_verdicts_are_monotone_in_observed_times(
        reference in prop::collection::vec(0.05f64..10.0, 1..8),
        observations in prop::collection::vec((0usize..5, 0.01f64..30.0), 1..40),
        degradations in prop::collection::vec(1.0f64..8.0, 40),
        factor in 1.0f64..4.0,
    ) {
        let exec = ExecutionConfig {
            threshold: ThresholdPolicy::Factor { factor },
            monitor_interval_s: 1.0,
            ..ExecutionConfig::default()
        };
        let mut base = AdaptationEngine::for_executors(&exec, &reference, SimTime::ZERO);
        let mut worse = AdaptationEngine::for_executors(&exec, &reference, SimTime::ZERO);
        for (i, (node, t)) in observations.iter().enumerate() {
            base.observe(NodeId(*node), *t);
            // Worsen every observation by its own factor >= 1: each node's
            // mean can only grow.
            worse.observe(NodeId(*node), *t * degradations[i % degradations.len()]);
        }
        let base_poll = base.poll(SimTime::new(5.0)).expect("observations were reported");
        let worse_poll = worse.poll(SimTime::new(5.0)).expect("observations were reported");
        if base_poll.verdict.recalibrate {
            prop_assert!(
                worse_poll.verdict.recalibrate,
                "worsening times un-breached the threshold: base min {} worse min {} Z {}",
                base_poll.verdict.min_time,
                worse_poll.verdict.min_time,
                base_poll.verdict.threshold,
            );
        }
        for node in &base_poll.verdict.demote {
            prop_assert!(
                worse_poll.verdict.demote.contains(node),
                "worsening times un-demoted node {node:?}"
            );
        }
    }

    /// Config validation accepts exactly the documented parameter ranges.
    #[test]
    fn config_validation_matches_ranges(
        fraction in -0.5f64..1.5,
        interval in -1.0f64..10.0,
        demote in 0.0f64..5.0,
    ) {
        let mut cfg = GraspConfig::default();
        cfg.calibration.selection_fraction = fraction;
        cfg.execution.monitor_interval_s = interval;
        cfg.execution.demote_factor = demote;
        let ok = fraction > 0.0 && fraction <= 1.0 && interval > 0.0 && demote >= 1.0;
        prop_assert_eq!(cfg.validate().is_ok(), ok);
    }

    /// Farm node shares always sum to one and per-node counts to the total.
    #[test]
    fn farm_accounting_is_consistent(
        tasks_n in 5usize..50,
        nodes in 2usize..6,
        work in 5.0f64..100.0,
    ) {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(nodes, 40.0));
        let tasks = TaskSpec::uniform(tasks_n, work, 2048, 2048);
        let out = TaskFarm::new(GraspConfig::default()).run(&grid, &tasks).unwrap();
        let counted: usize = out.per_node_tasks.values().sum();
        prop_assert_eq!(counted, out.completed_tasks());
        let share_sum: f64 = out.node_shares().values().sum();
        prop_assert!((share_sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(out.timeline.total() as usize, out.completed_tasks());
    }
}
