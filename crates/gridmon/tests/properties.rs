//! Property-based tests over the monitoring and forecasting library.

use gridmon::*;
use gridsim::SimTime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every forecaster, fed values from [0, 1], predicts within a modestly
    /// widened range (AR extrapolation may overshoot slightly but never wildly).
    #[test]
    fn forecasts_stay_near_the_observed_range(
        values in prop::collection::vec(0.0f64..1.0, 1..200),
    ) {
        let mut forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingWindowMean::new(8)),
            Box::new(SlidingWindowMedian::new(8)),
            Box::new(ExponentialSmoothing::new(0.3)),
            Box::new(Ar1Forecaster::new(32)),
            Box::new(AdaptiveForecaster::standard()),
        ];
        for f in &mut forecasters {
            for &v in &values {
                f.observe(v);
            }
            let p = f.predict().unwrap();
            prop_assert!(p.is_finite(), "{} produced a non-finite forecast", f.name());
            prop_assert!((-1.0..=2.0).contains(&p), "{} forecast {} far outside [0,1]", f.name(), p);
        }
    }

    /// Resetting a forecaster returns it to the "no prediction" state.
    #[test]
    fn reset_clears_every_forecaster(values in prop::collection::vec(0.0f64..1.0, 1..50)) {
        let mut forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingWindowMean::new(4)),
            Box::new(ExponentialSmoothing::new(0.5)),
            Box::new(Ar1Forecaster::new(16)),
            Box::new(AdaptiveForecaster::standard()),
        ];
        for f in &mut forecasters {
            for &v in &values {
                f.observe(v);
            }
            f.reset();
            prop_assert!(f.predict().is_none(), "{} still predicts after reset", f.name());
        }
    }

    /// The bounded time series never exceeds its capacity and always reports
    /// the most recent value as `last()`.
    #[test]
    fn time_series_respects_capacity(
        capacity in 1usize..64,
        values in prop::collection::vec(0.0f64..1.0, 1..200),
    ) {
        let mut s = TimeSeries::with_capacity(capacity);
        for (i, &v) in values.iter().enumerate() {
            s.push(SimTime::new(i as f64), v);
        }
        prop_assert!(s.len() <= capacity);
        prop_assert_eq!(s.last(), values.last().copied());
        let expected_tail: Vec<f64> =
            values[values.len().saturating_sub(capacity)..].to_vec();
        prop_assert_eq!(s.values(), expected_tail);
    }

    /// The adaptive forecaster's error is never much worse than the best
    /// individual candidate on the same series (it may tie or slightly exceed
    /// during the learning prefix).
    #[test]
    fn adaptive_forecaster_tracks_the_best_candidate(
        values in prop::collection::vec(0.0f64..1.0, 30..300),
    ) {
        let best_single = [
            mean_absolute_error(&mut LastValue::new(), &values),
            mean_absolute_error(&mut RunningMean::new(), &values),
            mean_absolute_error(&mut SlidingWindowMean::new(8), &values),
            mean_absolute_error(&mut ExponentialSmoothing::new(0.3), &values),
        ]
        .into_iter()
        .flatten()
        .fold(f64::INFINITY, f64::min);
        let adaptive =
            mean_absolute_error(&mut AdaptiveForecaster::standard(), &values).unwrap_or(0.0);
        prop_assert!(adaptive <= best_single * 3.0 + 0.05,
            "adaptive {} vs best single {}", adaptive, best_single);
    }
}
