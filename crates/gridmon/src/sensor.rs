//! Sensors: how the monitor observes the grid.
//!
//! A sensor turns the simulated grid's ground truth into the kind of reading
//! a deployed monitor would produce.  [`NoisySensor`] adds bounded,
//! deterministic measurement noise so that the calibration layer is exercised
//! against imperfect observations, exactly as it would be against a real
//! NWS deployment.

use gridsim::{Grid, NodeId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A source of scalar observations about the grid.
pub trait Sensor: Send {
    /// Take a reading at virtual time `t`.
    fn sample(&mut self, t: SimTime) -> f64;

    /// What this sensor measures, for reports.
    fn describe(&self) -> String;
}

/// Samples the external CPU load of one node.
pub struct CpuLoadSensor {
    grid: Arc<Grid>,
    node: NodeId,
}

impl CpuLoadSensor {
    /// Sensor for `node` on `grid`.
    pub fn new(grid: Arc<Grid>, node: NodeId) -> Self {
        CpuLoadSensor { grid, node }
    }
}

impl Sensor for CpuLoadSensor {
    fn sample(&mut self, t: SimTime) -> f64 {
        self.grid.cpu_load(self.node, t)
    }
    fn describe(&self) -> String {
        format!("cpu-load({})", self.node)
    }
}

/// Samples the available bandwidth fraction between two nodes.
pub struct BandwidthSensor {
    grid: Arc<Grid>,
    from: NodeId,
    to: NodeId,
}

impl BandwidthSensor {
    /// Sensor for the path `from → to` on `grid`.
    pub fn new(grid: Arc<Grid>, from: NodeId, to: NodeId) -> Self {
        BandwidthSensor { grid, from, to }
    }
}

impl Sensor for BandwidthSensor {
    fn sample(&mut self, t: SimTime) -> f64 {
        self.grid.bandwidth_availability(self.from, self.to, t)
    }
    fn describe(&self) -> String {
        format!("bandwidth({}->{})", self.from, self.to)
    }
}

/// Wraps another sensor and perturbs its readings with bounded uniform noise,
/// clamping the result to `[0, 1]` (all monitored quantities are fractions).
pub struct NoisySensor<S: Sensor> {
    inner: S,
    noise: f64,
    rng: StdRng,
}

impl<S: Sensor> NoisySensor<S> {
    /// Add `±noise` uniform perturbation to `inner`'s readings
    /// (deterministic per seed).
    pub fn new(inner: S, noise: f64, seed: u64) -> Self {
        NoisySensor {
            inner,
            noise: noise.abs(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<S: Sensor> Sensor for NoisySensor<S> {
    fn sample(&mut self, t: SimTime) -> f64 {
        let v = self.inner.sample(t);
        if self.noise == 0.0 {
            return v;
        }
        let e = self.rng.gen_range(-self.noise..self.noise);
        (v + e).clamp(0.0, 1.0)
    }
    fn describe(&self) -> String {
        format!("noisy({}, ±{:.3})", self.inner.describe(), self.noise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::{ConstantLoad, GridBuilder, TopologyBuilder};

    fn loaded_grid() -> Arc<Grid> {
        let topo = TopologyBuilder::multi_site(&[(2, 10.0), (2, 10.0)]);
        Arc::new(
            GridBuilder::new(topo)
                .node_load(NodeId(1), ConstantLoad::new(0.6))
                .default_link_load(ConstantLoad::new(0.25))
                .build(),
        )
    }

    #[test]
    fn cpu_sensor_reads_ground_truth() {
        let grid = loaded_grid();
        let mut idle = CpuLoadSensor::new(grid.clone(), NodeId(0));
        let mut busy = CpuLoadSensor::new(grid, NodeId(1));
        assert_eq!(idle.sample(SimTime::ZERO), 0.0);
        assert!((busy.sample(SimTime::ZERO) - 0.6).abs() < 1e-12);
        assert!(busy.describe().contains("cpu-load"));
    }

    #[test]
    fn bandwidth_sensor_reads_link_availability() {
        let grid = loaded_grid();
        let mut s = BandwidthSensor::new(grid, NodeId(0), NodeId(2));
        assert!((s.sample(SimTime::ZERO) - 0.75).abs() < 1e-12);
        assert!(s.describe().contains("bandwidth"));
    }

    #[test]
    fn noisy_sensor_stays_bounded_and_deterministic() {
        let grid = loaded_grid();
        let mut a = NoisySensor::new(CpuLoadSensor::new(grid.clone(), NodeId(1)), 0.1, 7);
        let mut b = NoisySensor::new(CpuLoadSensor::new(grid, NodeId(1)), 0.1, 7);
        for i in 0..50 {
            let t = SimTime::new(i as f64);
            let va = a.sample(t);
            let vb = b.sample(t);
            assert_eq!(va, vb, "same seed must give same noise");
            assert!((0.0..=1.0).contains(&va));
            assert!((va - 0.6).abs() <= 0.1 + 1e-9);
        }
    }

    #[test]
    fn zero_noise_passes_through() {
        let grid = loaded_grid();
        let mut s = NoisySensor::new(CpuLoadSensor::new(grid, NodeId(1)), 0.0, 1);
        assert!((s.sample(SimTime::ZERO) - 0.6).abs() < 1e-12);
    }
}
