//! One-step-ahead forecasters.
//!
//! Statistical calibration extrapolates node performance from recent
//! observations.  Following the Network Weather Service design that grid
//! monitors of the paper's era used, we provide a family of cheap
//! single-series predictors and an [`AdaptiveForecaster`] that continuously
//! tracks which predictor has been most accurate and delegates to it.
//!
//! Every forecaster is updated observation-by-observation via
//! [`Forecaster::observe`] and asked for a prediction of the *next* value via
//! [`Forecaster::predict`].

use gridstats::{linear_regression, median};
use std::collections::VecDeque;

/// A one-step-ahead predictor over a scalar series.
pub trait Forecaster: Send {
    /// Feed the next observed value.
    fn observe(&mut self, value: f64);

    /// Predict the next value; `None` until enough observations have arrived.
    fn predict(&self) -> Option<f64>;

    /// Short name used in reports (e.g. `"last"`, `"ar1"`).
    fn name(&self) -> &'static str;

    /// Reset to the initial (empty) state.
    fn reset(&mut self);
}

/// Predicts the next value to equal the last observed value.
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// New empty predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for LastValue {
    fn observe(&mut self, value: f64) {
        if !value.is_nan() {
            self.last = Some(value);
        }
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
    fn name(&self) -> &'static str {
        "last"
    }
    fn reset(&mut self) {
        self.last = None;
    }
}

/// Predicts the running mean of every observation seen so far.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    count: u64,
    sum: f64,
}

impl RunningMean {
    /// New empty predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for RunningMean {
    fn observe(&mut self, value: f64) {
        if !value.is_nan() {
            self.count += 1;
            self.sum += value;
        }
    }
    fn predict(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
    fn name(&self) -> &'static str {
        "running-mean"
    }
    fn reset(&mut self) {
        self.count = 0;
        self.sum = 0.0;
    }
}

/// Mean of the `k` most recent observations.
#[derive(Debug, Clone)]
pub struct SlidingWindowMean {
    window: VecDeque<f64>,
    k: usize,
}

impl SlidingWindowMean {
    /// Window of size `k` (minimum 1).
    pub fn new(k: usize) -> Self {
        SlidingWindowMean {
            window: VecDeque::new(),
            k: k.max(1),
        }
    }
}

impl Forecaster for SlidingWindowMean {
    fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        if self.window.len() == self.k {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
        }
    }
    fn name(&self) -> &'static str {
        "window-mean"
    }
    fn reset(&mut self) {
        self.window.clear();
    }
}

/// Median of the `k` most recent observations (robust to spikes).
#[derive(Debug, Clone)]
pub struct SlidingWindowMedian {
    window: VecDeque<f64>,
    k: usize,
}

impl SlidingWindowMedian {
    /// Window of size `k` (minimum 1).
    pub fn new(k: usize) -> Self {
        SlidingWindowMedian {
            window: VecDeque::new(),
            k: k.max(1),
        }
    }
}

impl Forecaster for SlidingWindowMedian {
    fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        if self.window.len() == self.k {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        let vals: Vec<f64> = self.window.iter().copied().collect();
        median(&vals)
    }
    fn name(&self) -> &'static str {
        "window-median"
    }
    fn reset(&mut self) {
        self.window.clear();
    }
}

/// Exponentially smoothed prediction `s ← α·x + (1−α)·s`.
#[derive(Debug, Clone)]
pub struct ExponentialSmoothing {
    alpha: f64,
    state: Option<f64>,
}

impl ExponentialSmoothing {
    /// Smoothing factor `alpha` clamped to `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        ExponentialSmoothing {
            alpha: alpha.clamp(1e-3, 1.0),
            state: None,
        }
    }
}

impl Forecaster for ExponentialSmoothing {
    fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.alpha * value + (1.0 - self.alpha) * s,
        });
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
    fn name(&self) -> &'static str {
        "exp-smooth"
    }
    fn reset(&mut self) {
        self.state = None;
    }
}

/// First-order autoregressive predictor: fits `xₜ = β₀ + β₁·xₜ₋₁` over a
/// bounded history by least squares and extrapolates one step.
#[derive(Debug, Clone)]
pub struct Ar1Forecaster {
    history: VecDeque<f64>,
    capacity: usize,
}

impl Ar1Forecaster {
    /// Keep at most `capacity` recent observations for the fit (minimum 4).
    pub fn new(capacity: usize) -> Self {
        Ar1Forecaster {
            history: VecDeque::new(),
            capacity: capacity.max(4),
        }
    }
}

impl Forecaster for Ar1Forecaster {
    fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        if self.history.len() == self.capacity {
            self.history.pop_front();
        }
        self.history.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        let n = self.history.len();
        if n < 3 {
            return self.history.back().copied();
        }
        let vals: Vec<f64> = self.history.iter().copied().collect();
        let x: Vec<f64> = vals[..n - 1].to_vec();
        let y: Vec<f64> = vals[1..].to_vec();
        match linear_regression(&x, &y) {
            // A near-constant history makes the lag-regression denominator
            // tiny: the fitted slope explodes and the extrapolation lands
            // arbitrarily far from anything ever observed (observed in the
            // wild as a load forecast of −33 from a series of ≈0.9s).  Two
            // guards keep the predictor sane: a slope far outside the
            // stationary band means the fit is unstable (fall back to the
            // last value), and any prediction is confined to one
            // history-range width beyond the observed envelope — enough to
            // extrapolate a genuine trend, never enough to leave orbit.
            Ok(fit) if fit.slope.abs() <= 2.0 => {
                let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
                let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let range = (max - min).max(f64::EPSILON);
                Some(fit.predict(vals[n - 1]).clamp(min - range, max + range))
            }
            // Unstable or singular fit → predict the last value.
            _ => vals.last().copied(),
        }
    }
    fn name(&self) -> &'static str {
        "ar1"
    }
    fn reset(&mut self) {
        self.history.clear();
    }
}

/// Tracks a set of candidate forecasters, scores each by its mean absolute
/// one-step error so far, and delegates prediction to the current best.
pub struct AdaptiveForecaster {
    candidates: Vec<Box<dyn Forecaster>>,
    abs_error_sums: Vec<f64>,
    scored_updates: u64,
}

impl AdaptiveForecaster {
    /// Build from an explicit candidate set (must be non-empty; an empty set
    /// is replaced by the default set).
    pub fn new(candidates: Vec<Box<dyn Forecaster>>) -> Self {
        let candidates = if candidates.is_empty() {
            Self::default_candidates()
        } else {
            candidates
        };
        let n = candidates.len();
        AdaptiveForecaster {
            candidates,
            abs_error_sums: vec![0.0; n],
            scored_updates: 0,
        }
    }

    /// The default NWS-style candidate set.
    pub fn default_candidates() -> Vec<Box<dyn Forecaster>> {
        vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingWindowMean::new(8)),
            Box::new(SlidingWindowMedian::new(8)),
            Box::new(ExponentialSmoothing::new(0.3)),
            Box::new(Ar1Forecaster::new(32)),
        ]
    }

    /// An adaptive forecaster over the default candidate set.
    pub fn standard() -> Self {
        Self::new(Self::default_candidates())
    }

    /// Index of the currently best candidate (lowest mean absolute error;
    /// ties broken by candidate order).
    fn best_index(&self) -> usize {
        let mut best = 0usize;
        let mut best_err = f64::INFINITY;
        for (i, &sum) in self.abs_error_sums.iter().enumerate() {
            let err = if self.scored_updates == 0 {
                0.0
            } else {
                sum / self.scored_updates as f64
            };
            if err < best_err {
                best_err = err;
                best = i;
            }
        }
        best
    }

    /// Name of the candidate currently used for predictions.
    pub fn best_name(&self) -> &'static str {
        self.candidates[self.best_index()].name()
    }

    /// Mean absolute error of each candidate so far, in candidate order.
    pub fn candidate_errors(&self) -> Vec<(&'static str, f64)> {
        self.candidates
            .iter()
            .zip(&self.abs_error_sums)
            .map(|(c, &sum)| {
                let err = if self.scored_updates == 0 {
                    0.0
                } else {
                    sum / self.scored_updates as f64
                };
                (c.name(), err)
            })
            .collect()
    }
}

impl Forecaster for AdaptiveForecaster {
    fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        // Score each candidate's prediction against the value that actually
        // arrived, then let it see the value.
        let mut any_scored = false;
        for (i, c) in self.candidates.iter_mut().enumerate() {
            if let Some(p) = c.predict() {
                self.abs_error_sums[i] += (p - value).abs();
                any_scored = true;
            }
            c.observe(value);
        }
        if any_scored {
            self.scored_updates += 1;
        }
    }

    fn predict(&self) -> Option<f64> {
        self.candidates[self.best_index()].predict()
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn reset(&mut self) {
        for c in &mut self.candidates {
            c.reset();
        }
        for e in &mut self.abs_error_sums {
            *e = 0.0;
        }
        self.scored_updates = 0;
    }
}

/// Evaluate a forecaster over a series: feed the values one by one, recording
/// the absolute error of each one-step-ahead prediction.  Returns the mean
/// absolute error (`None` when no prediction could be scored).
pub fn mean_absolute_error(forecaster: &mut dyn Forecaster, series: &[f64]) -> Option<f64> {
    let mut errors = Vec::new();
    for &v in series {
        if let Some(p) = forecaster.predict() {
            errors.push((p - v).abs());
        }
        forecaster.observe(v);
    }
    gridstats::mean(&errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_predicts_last() {
        let mut f = LastValue::new();
        assert!(f.predict().is_none());
        f.observe(3.0);
        f.observe(5.0);
        assert_eq!(f.predict(), Some(5.0));
        f.reset();
        assert!(f.predict().is_none());
    }

    #[test]
    fn running_mean_converges() {
        let mut f = RunningMean::new();
        for v in [2.0, 4.0, 6.0] {
            f.observe(v);
        }
        assert!((f.predict().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_mean_forgets_old_values() {
        let mut f = SlidingWindowMean::new(2);
        for v in [100.0, 1.0, 3.0] {
            f.observe(v);
        }
        assert!((f.predict().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_median_resists_spikes() {
        let mut f = SlidingWindowMedian::new(5);
        for v in [1.0, 1.1, 0.9, 50.0, 1.0] {
            f.observe(v);
        }
        assert!(f.predict().unwrap() < 2.0);
    }

    #[test]
    fn exponential_smoothing_tracks_shift() {
        let mut f = ExponentialSmoothing::new(0.5);
        for _ in 0..20 {
            f.observe(10.0);
        }
        assert!((f.predict().unwrap() - 10.0).abs() < 1e-6);
        for _ in 0..20 {
            f.observe(20.0);
        }
        assert!((f.predict().unwrap() - 20.0).abs() < 0.1);
    }

    #[test]
    fn ar1_extrapolates_linear_trend() {
        let mut f = Ar1Forecaster::new(32);
        // xₜ = xₜ₋₁ + 1 → AR(1) with slope 1, intercept 1.
        for v in 1..=10 {
            f.observe(v as f64);
        }
        let p = f.predict().unwrap();
        assert!((p - 11.0).abs() < 1e-6, "expected 11, got {p}");
    }

    #[test]
    fn ar1_never_leaves_the_observed_orbit_on_noisy_near_constant_series() {
        // A jittery near-constant series makes the lag-regression slope
        // explode; the prediction must stay near the observed band instead
        // of extrapolating to nonsense (a real failure: −33 forecast from a
        // series of ≈0.9 load estimates).
        let mut f = Ar1Forecaster::new(32);
        for (i, jitter) in [1e-9, -2e-9, 3e-9, -1e-9, 2e-9]
            .iter()
            .cycle()
            .take(12)
            .enumerate()
        {
            f.observe(0.92 + jitter * (i as f64 + 1.0));
        }
        let p = f.predict().unwrap();
        assert!((p - 0.92).abs() < 0.01, "prediction {p} left the orbit");
    }

    #[test]
    fn ar1_handles_constant_series() {
        let mut f = Ar1Forecaster::new(16);
        for _ in 0..10 {
            f.observe(7.0);
        }
        assert!((f.predict().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn nan_observations_are_ignored_by_all() {
        let mut forecasters: Vec<Box<dyn Forecaster>> = AdaptiveForecaster::default_candidates();
        for f in &mut forecasters {
            f.observe(1.0);
            f.observe(f64::NAN);
            assert!(f.predict().is_some());
            assert!(!f.predict().unwrap().is_nan(), "{} produced NaN", f.name());
        }
    }

    #[test]
    fn adaptive_selects_a_good_candidate_for_trending_data() {
        let mut f = AdaptiveForecaster::standard();
        // A steadily increasing series: AR(1) (or last-value) should dominate
        // the long-run mean.
        for i in 0..200 {
            f.observe(i as f64 * 0.5);
        }
        let errs = f.candidate_errors();
        let running_mean_err = errs.iter().find(|(n, _)| *n == "running-mean").unwrap().1;
        let best_err = errs.iter().find(|(n, _)| *n == f.best_name()).unwrap().1;
        assert!(best_err < running_mean_err);
        assert!(f.predict().is_some());
    }

    #[test]
    fn adaptive_reset_clears_scores() {
        let mut f = AdaptiveForecaster::standard();
        for i in 0..20 {
            f.observe(i as f64);
        }
        f.reset();
        assert!(f.predict().is_none());
        assert!(f.candidate_errors().iter().all(|(_, e)| *e == 0.0));
    }

    #[test]
    fn adaptive_with_empty_candidates_falls_back_to_defaults() {
        let f = AdaptiveForecaster::new(Vec::new());
        assert!(!f.candidate_errors().is_empty());
    }

    #[test]
    fn mae_ranks_predictors_sensibly_on_noisy_constant() {
        // Noisy constant series: window mean should beat last-value.
        let series: Vec<f64> = (0..300)
            .map(|i| 5.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let mae_last = mean_absolute_error(&mut LastValue::new(), &series).unwrap();
        let mae_mean = mean_absolute_error(&mut SlidingWindowMean::new(8), &series).unwrap();
        assert!(mae_mean < mae_last);
    }

    #[test]
    fn mae_of_empty_series_is_none() {
        assert!(mean_absolute_error(&mut LastValue::new(), &[]).is_none());
    }
}
