//! Bounded time series of observations.
//!
//! Each monitored quantity (CPU load on node *n*, bandwidth between two
//! sites, task execution time on a worker) is stored as a bounded series of
//! `(time, value)` pairs.  The bound keeps long-running executions from
//! growing memory without limit and matches how NWS-style monitors only keep
//! a sliding history.

use gridsim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded, append-only series of timestamped observations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    capacity: usize,
    times: VecDeque<f64>,
    values: VecDeque<f64>,
}

impl TimeSeries {
    /// Create a series that retains at most `capacity` observations
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TimeSeries {
            capacity,
            times: VecDeque::with_capacity(capacity),
            values: VecDeque::with_capacity(capacity),
        }
    }

    /// Maximum number of retained observations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no observations are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Record an observation, evicting the oldest if the series is full.
    /// NaN values are ignored.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if value.is_nan() {
            return;
        }
        if self.values.len() == self.capacity {
            self.times.pop_front();
            self.values.pop_front();
        }
        self.times.push_back(t.as_secs());
        self.values.push_back(value);
    }

    /// Most recent value.
    pub fn last(&self) -> Option<f64> {
        self.values.back().copied()
    }

    /// Most recent observation time.
    pub fn last_time(&self) -> Option<SimTime> {
        self.times.back().copied().map(SimTime::new)
    }

    /// All stored values, oldest first.
    pub fn values(&self) -> Vec<f64> {
        self.values.iter().copied().collect()
    }

    /// All stored observation times, oldest first.
    pub fn times(&self) -> Vec<f64> {
        self.times.iter().copied().collect()
    }

    /// The `n` most recent values, oldest first.
    pub fn last_n(&self, n: usize) -> Vec<f64> {
        let start = self.values.len().saturating_sub(n);
        self.values.iter().skip(start).copied().collect()
    }

    /// Mean of the `n` most recent values; `None` when empty.
    pub fn mean_of_last(&self, n: usize) -> Option<f64> {
        let vals = self.last_n(n);
        gridstats::mean(&vals)
    }

    /// Values observed at or after `since`, oldest first.
    pub fn since(&self, since: SimTime) -> Vec<f64> {
        self.times
            .iter()
            .zip(self.values.iter())
            .filter(|(t, _)| **t >= since.as_secs())
            .map(|(_, v)| *v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::new(s)
    }

    #[test]
    fn push_and_read_back() {
        let mut s = TimeSeries::with_capacity(10);
        s.push(t(1.0), 0.5);
        s.push(t(2.0), 0.6);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some(0.6));
        assert_eq!(s.last_time(), Some(t(2.0)));
        assert_eq!(s.values(), vec![0.5, 0.6]);
        assert_eq!(s.times(), vec![1.0, 2.0]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut s = TimeSeries::with_capacity(3);
        for i in 0..5 {
            s.push(t(i as f64), i as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut s = TimeSeries::with_capacity(0);
        s.push(t(0.0), 1.0);
        s.push(t(1.0), 2.0);
        assert_eq!(s.capacity(), 1);
        assert_eq!(s.values(), vec![2.0]);
    }

    #[test]
    fn nan_observations_are_dropped() {
        let mut s = TimeSeries::with_capacity(4);
        s.push(t(0.0), f64::NAN);
        assert!(s.is_empty());
    }

    #[test]
    fn last_n_and_mean_of_last() {
        let mut s = TimeSeries::with_capacity(10);
        for i in 1..=5 {
            s.push(t(i as f64), i as f64);
        }
        assert_eq!(s.last_n(2), vec![4.0, 5.0]);
        assert_eq!(s.last_n(99).len(), 5);
        assert!((s.mean_of_last(2).unwrap() - 4.5).abs() < 1e-12);
        assert!(TimeSeries::with_capacity(3).mean_of_last(2).is_none());
    }

    #[test]
    fn since_filters_by_time() {
        let mut s = TimeSeries::with_capacity(10);
        for i in 0..5 {
            s.push(t(i as f64 * 10.0), i as f64);
        }
        assert_eq!(s.since(t(20.0)), vec![2.0, 3.0, 4.0]);
        assert!(s.since(t(100.0)).is_empty());
    }
}
