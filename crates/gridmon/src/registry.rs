//! Per-node monitor registry.
//!
//! The registry is what the GRASP phases actually hold: one bounded series
//! and one adaptive forecaster per monitored node (CPU) and, optionally, per
//! node pair (bandwidth towards the master/root node).  The calibration phase
//! reads *current* values to adjust the execution-time table; the execution
//! phase keeps feeding it so forecasts stay fresh across recalibrations.

use crate::forecast::{AdaptiveForecaster, Forecaster};
use crate::series::TimeSeries;
use gridsim::{Grid, NodeId, SimTime};
use std::collections::BTreeMap;

/// The latest monitored state of one node, as consumed by statistical
/// calibration (Algorithm 1: "Collect processor and bandwidth values").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeObservation {
    /// Node the observation refers to.
    pub node: NodeId,
    /// Observation time.
    pub time: SimTime,
    /// External CPU load fraction in `[0, 1]`.
    pub cpu_load: f64,
    /// Available bandwidth fraction towards the root/master node in `[0, 1]`.
    pub bandwidth_availability: f64,
}

impl NodeObservation {
    /// Derive a grid-style observation from **wall-clock execution times**:
    /// an executor's "external CPU load" is estimated from how much slower
    /// it currently runs than its calibrated baseline
    /// (`load = 1 − baseline / observed`, clamped to `[0, 1]`), and
    /// bandwidth is reported as fully available (a shared-memory executor
    /// has no link towards the master).
    ///
    /// This is the plumbing that lets real-thread backends feed the same
    /// [`MonitorRegistry`] and forecasters the simulated grid uses: `time`
    /// is whatever the caller's clock says (wall seconds since run start),
    /// and the registry neither knows nor cares which clock produced it.
    pub fn from_wall_times(
        node: NodeId,
        at: SimTime,
        baseline_s_per_unit: f64,
        observed_s_per_unit: f64,
    ) -> Self {
        let cpu_load = if baseline_s_per_unit > 0.0 && observed_s_per_unit > 0.0 {
            (1.0 - baseline_s_per_unit / observed_s_per_unit).clamp(0.0, 1.0)
        } else {
            0.0
        };
        NodeObservation {
            node,
            time: at,
            cpu_load,
            bandwidth_availability: 1.0,
        }
    }
}

struct NodeMonitor {
    cpu_series: TimeSeries,
    bw_series: TimeSeries,
    cpu_forecast: AdaptiveForecaster,
    bw_forecast: AdaptiveForecaster,
}

impl NodeMonitor {
    fn new(history: usize) -> Self {
        NodeMonitor {
            cpu_series: TimeSeries::with_capacity(history),
            bw_series: TimeSeries::with_capacity(history),
            cpu_forecast: AdaptiveForecaster::standard(),
            bw_forecast: AdaptiveForecaster::standard(),
        }
    }
}

/// Registry of per-node monitors.
pub struct MonitorRegistry {
    monitors: BTreeMap<NodeId, NodeMonitor>,
    /// Liveness: last heartbeat per node (see
    /// [`MonitorRegistry::note_heartbeat`]).  Kept separate from the
    /// performance monitors because a node can prove it is alive long before
    /// it has produced any load observation.
    heartbeats: BTreeMap<NodeId, SimTime>,
    history: usize,
    root: NodeId,
}

impl MonitorRegistry {
    /// Create a registry whose bandwidth observations are measured towards
    /// `root` (the master / root node of the skeleton), keeping `history`
    /// samples per series.
    pub fn new(root: NodeId, history: usize) -> Self {
        MonitorRegistry {
            monitors: BTreeMap::new(),
            heartbeats: BTreeMap::new(),
            history: history.max(1),
            root,
        }
    }

    /// The root node bandwidth is measured against.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes currently monitored.
    pub fn monitored_nodes(&self) -> usize {
        self.monitors.len()
    }

    /// Sample every given node from the grid at time `t`, updating series and
    /// forecasters, and return the fresh observations.
    pub fn observe_all(
        &mut self,
        grid: &Grid,
        nodes: &[NodeId],
        t: SimTime,
    ) -> Vec<NodeObservation> {
        nodes.iter().map(|&n| self.observe(grid, n, t)).collect()
    }

    /// Sample one node from the grid at time `t`.
    pub fn observe(&mut self, grid: &Grid, node: NodeId, t: SimTime) -> NodeObservation {
        let cpu = grid.cpu_load(node, t);
        let bw = if node == self.root {
            1.0
        } else {
            grid.bandwidth_availability(node, self.root, t)
        };
        let entry = self
            .monitors
            .entry(node)
            .or_insert_with(|| NodeMonitor::new(self.history));
        entry.cpu_series.push(t, cpu);
        entry.bw_series.push(t, bw);
        entry.cpu_forecast.observe(cpu);
        entry.bw_forecast.observe(bw);
        NodeObservation {
            node,
            time: t,
            cpu_load: cpu,
            bandwidth_availability: bw,
        }
    }

    /// Record an externally measured observation (e.g. taken by a worker and
    /// shipped to the root) without touching the grid.
    pub fn record(&mut self, obs: NodeObservation) {
        let entry = self
            .monitors
            .entry(obs.node)
            .or_insert_with(|| NodeMonitor::new(self.history));
        entry.cpu_series.push(obs.time, obs.cpu_load);
        entry.bw_series.push(obs.time, obs.bandwidth_availability);
        entry.cpu_forecast.observe(obs.cpu_load);
        entry.bw_forecast.observe(obs.bandwidth_availability);
    }

    /// Latest observed CPU load of a node, if any.
    pub fn latest_cpu_load(&self, node: NodeId) -> Option<f64> {
        self.monitors.get(&node).and_then(|m| m.cpu_series.last())
    }

    /// Latest observed bandwidth availability of a node, if any.
    pub fn latest_bandwidth(&self, node: NodeId) -> Option<f64> {
        self.monitors.get(&node).and_then(|m| m.bw_series.last())
    }

    /// Forecast CPU load of a node; falls back to the latest observation.
    pub fn forecast_cpu_load(&self, node: NodeId) -> Option<f64> {
        let m = self.monitors.get(&node)?;
        m.cpu_forecast.predict().or_else(|| m.cpu_series.last())
    }

    /// Forecast bandwidth availability of a node; falls back to the latest
    /// observation.
    pub fn forecast_bandwidth(&self, node: NodeId) -> Option<f64> {
        let m = self.monitors.get(&node)?;
        m.bw_forecast.predict().or_else(|| m.bw_series.last())
    }

    /// The recorded CPU-load history of a node (oldest first).
    pub fn cpu_history(&self, node: NodeId) -> Vec<f64> {
        self.monitors
            .get(&node)
            .map(|m| m.cpu_series.values())
            .unwrap_or_default()
    }

    /// Record a liveness heartbeat from `node` at time `t`.
    ///
    /// Heartbeats are the monitoring-message side of executor liveness: a
    /// remote worker that can no longer be observed (hard-killed, network
    /// partition) simply stops producing them, and the master detects the
    /// loss through [`MonitorRegistry::stale_nodes`].  Any observation-style
    /// message (a result, a monitor report) doubles as a heartbeat.
    pub fn note_heartbeat(&mut self, node: NodeId, t: SimTime) {
        let entry = self.heartbeats.entry(node).or_insert(t);
        if t > *entry {
            *entry = t;
        }
    }

    /// The time of the last heartbeat recorded for `node`, if any.
    pub fn last_heartbeat(&self, node: NodeId) -> Option<SimTime> {
        self.heartbeats.get(&node).copied()
    }

    /// Nodes that have heartbeated at least once but whose last heartbeat is
    /// older than `timeout_s` at `now` — presumed dead until they report
    /// again.
    pub fn stale_nodes(&self, now: SimTime, timeout_s: f64) -> Vec<NodeId> {
        self.heartbeats
            .iter()
            .filter(|(_, &last)| (now - last).as_secs() > timeout_s)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Forget a node's liveness record (after the caller has acted on its
    /// loss, so it is not re-reported every sweep).
    pub fn forget_heartbeat(&mut self, node: NodeId) {
        self.heartbeats.remove(&node);
    }

    /// Drop all recorded state (used when a recalibration decides to start
    /// from scratch).
    pub fn clear(&mut self) {
        self.monitors.clear();
        self.heartbeats.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::{ConstantLoad, GridBuilder, PeriodicLoad, TopologyBuilder};

    fn grid() -> Grid {
        let topo = TopologyBuilder::multi_site(&[(2, 10.0), (2, 20.0)]);
        GridBuilder::new(topo)
            .node_load(NodeId(1), ConstantLoad::new(0.5))
            .node_load(NodeId(3), PeriodicLoad::new(0.4, 0.3, 50.0, 0.0))
            .default_link_load(ConstantLoad::new(0.2))
            .build()
    }

    #[test]
    fn observe_populates_series_and_forecasts() {
        let g = grid();
        let mut reg = MonitorRegistry::new(NodeId(0), 64);
        let nodes: Vec<NodeId> = g.node_ids();
        for i in 0..10 {
            reg.observe_all(&g, &nodes, SimTime::new(i as f64 * 5.0));
        }
        assert_eq!(reg.monitored_nodes(), 4);
        assert!((reg.latest_cpu_load(NodeId(1)).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(reg.latest_cpu_load(NodeId(0)).unwrap(), 0.0);
        // Root's bandwidth to itself is perfect; remote node sees link load.
        assert_eq!(reg.latest_bandwidth(NodeId(0)).unwrap(), 1.0);
        assert!((reg.latest_bandwidth(NodeId(3)).unwrap() - 0.8).abs() < 1e-12);
        assert!(reg.forecast_cpu_load(NodeId(1)).is_some());
        assert!(reg.forecast_bandwidth(NodeId(3)).is_some());
        assert_eq!(reg.cpu_history(NodeId(1)).len(), 10);
    }

    #[test]
    fn forecast_tracks_constant_load_closely() {
        let g = grid();
        let mut reg = MonitorRegistry::new(NodeId(0), 64);
        for i in 0..30 {
            reg.observe(&g, NodeId(1), SimTime::new(i as f64));
        }
        let f = reg.forecast_cpu_load(NodeId(1)).unwrap();
        assert!((f - 0.5).abs() < 0.05);
    }

    #[test]
    fn unknown_node_has_no_data() {
        let reg = MonitorRegistry::new(NodeId(0), 16);
        assert!(reg.latest_cpu_load(NodeId(9)).is_none());
        assert!(reg.forecast_cpu_load(NodeId(9)).is_none());
        assert!(reg.cpu_history(NodeId(9)).is_empty());
    }

    #[test]
    fn wall_time_observations_estimate_load_from_the_slowdown() {
        // Running at the calibrated baseline = no external load; running 4x
        // slower = 75 % of the executor stolen by something else.
        let at = SimTime::new(3.0);
        let healthy = NodeObservation::from_wall_times(NodeId(1), at, 0.01, 0.01);
        assert!(healthy.cpu_load.abs() < 1e-12);
        assert_eq!(healthy.bandwidth_availability, 1.0);
        let slowed = NodeObservation::from_wall_times(NodeId(1), at, 0.01, 0.04);
        assert!((slowed.cpu_load - 0.75).abs() < 1e-12);
        // Degenerate inputs fall back to "no load" instead of NaN.
        assert_eq!(
            NodeObservation::from_wall_times(NodeId(1), at, 0.0, 0.04).cpu_load,
            0.0
        );
        // A faster-than-baseline observation clamps at zero load.
        assert_eq!(
            NodeObservation::from_wall_times(NodeId(1), at, 0.02, 0.01).cpu_load,
            0.0
        );
        // Fed through the registry, the forecaster tracks the estimate.
        let mut reg = MonitorRegistry::new(NodeId(0), 16);
        for i in 0..10 {
            reg.record(NodeObservation::from_wall_times(
                NodeId(1),
                SimTime::new(i as f64),
                0.01,
                0.04,
            ));
        }
        let f = reg.forecast_cpu_load(NodeId(1)).unwrap();
        assert!((f - 0.75).abs() < 0.05, "forecast {f}");
    }

    #[test]
    fn record_accepts_external_observations() {
        let mut reg = MonitorRegistry::new(NodeId(0), 16);
        reg.record(NodeObservation {
            node: NodeId(7),
            time: SimTime::new(1.0),
            cpu_load: 0.33,
            bandwidth_availability: 0.9,
        });
        assert!((reg.latest_cpu_load(NodeId(7)).unwrap() - 0.33).abs() < 1e-12);
        assert!((reg.latest_bandwidth(NodeId(7)).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn clear_empties_the_registry() {
        let g = grid();
        let mut reg = MonitorRegistry::new(NodeId(0), 16);
        reg.observe(&g, NodeId(1), SimTime::ZERO);
        reg.note_heartbeat(NodeId(1), SimTime::ZERO);
        assert_eq!(reg.monitored_nodes(), 1);
        reg.clear();
        assert_eq!(reg.monitored_nodes(), 0);
        assert!(reg.last_heartbeat(NodeId(1)).is_none());
    }

    #[test]
    fn heartbeat_timeouts_flag_silent_nodes_only() {
        let mut reg = MonitorRegistry::new(NodeId(0), 16);
        reg.note_heartbeat(NodeId(1), SimTime::new(1.0));
        reg.note_heartbeat(NodeId(2), SimTime::new(9.5));
        // A never-seen node is not reported: it has nothing to go stale.
        assert!(reg.last_heartbeat(NodeId(7)).is_none());
        assert_eq!(reg.stale_nodes(SimTime::new(10.0), 2.0), vec![NodeId(1)]);
        // A fresh heartbeat clears the suspicion…
        reg.note_heartbeat(NodeId(1), SimTime::new(10.0));
        assert!(reg.stale_nodes(SimTime::new(10.0), 2.0).is_empty());
        // …and heartbeats never move a node's clock backwards.
        reg.note_heartbeat(NodeId(1), SimTime::new(3.0));
        assert_eq!(reg.last_heartbeat(NodeId(1)), Some(SimTime::new(10.0)));
        // Forgetting a node stops it from being re-reported every sweep.
        reg.note_heartbeat(NodeId(3), SimTime::ZERO);
        assert_eq!(reg.stale_nodes(SimTime::new(50.0), 2.0).len(), 3);
        reg.forget_heartbeat(NodeId(3));
        assert_eq!(reg.stale_nodes(SimTime::new(50.0), 2.0).len(), 2);
    }

    #[test]
    fn a_node_re_registering_after_staleness_starts_with_fresh_liveness() {
        // Dynamic membership: a node declared stale, acted upon, and later
        // re-admitted must not inherit its old heartbeat record.  The
        // caller's contract is forget-then-note on re-registration; after
        // that, the node is fresh — not instantly stale again — and the
        // sweep stops re-reporting it in between.
        let mut reg = MonitorRegistry::new(NodeId(0), 16);
        reg.note_heartbeat(NodeId(1), SimTime::ZERO);
        assert_eq!(reg.stale_nodes(SimTime::new(10.0), 2.0), vec![NodeId(1)]);
        // The caller acts on the loss: forget.  No more re-reports.
        reg.forget_heartbeat(NodeId(1));
        assert!(reg.stale_nodes(SimTime::new(10.0), 2.0).is_empty());
        assert!(reg.last_heartbeat(NodeId(1)).is_none());
        // Re-registration at t=10: without the preceding forget, the
        // never-move-backwards rule would pin the node to its dead past
        // (note_heartbeat(10) after a surviving record of 0 is fine — but a
        // *stray late frame* re-inserting t=0 would make it stale forever).
        reg.forget_heartbeat(NodeId(1)); // idempotent on the caller's path
        reg.note_heartbeat(NodeId(1), SimTime::new(10.0));
        assert!(
            reg.stale_nodes(SimTime::new(11.0), 2.0).is_empty(),
            "a re-registered node is fresh"
        );
        assert_eq!(reg.last_heartbeat(NodeId(1)), Some(SimTime::new(10.0)));
        // And it goes stale again only on its own new silence.
        assert_eq!(reg.stale_nodes(SimTime::new(13.0), 2.0), vec![NodeId(1)]);
    }
}
