//! # gridmon — resource monitoring and forecasting
//!
//! The GRASP compilation phase links the program against "the resource
//! monitoring library" and the calibration phase may "collect processor and
//! bandwidth values" to adjust the execution-time table statistically
//! (Algorithm 1).  On the paper's testbed this role is played by an NWS-style
//! monitoring service; here we implement the equivalent library:
//!
//! * [`sensor`] — sensors that sample CPU load and bandwidth availability
//!   from a [`gridsim::Grid`], optionally with measurement noise, mimicking a
//!   real monitor's imperfect observations;
//! * [`series`] — bounded time series storing recent observations;
//! * [`forecast`] — one-step-ahead predictors (last value, running mean,
//!   sliding-window mean/median, exponential smoothing, AR(1)) plus an
//!   adaptive selector that tracks each predictor's error and uses the
//!   current best — the same trick the Network Weather Service uses;
//! * [`registry`] — a per-node monitor registry tying sensors, series and
//!   forecasters together for the calibration and execution phases.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod forecast;
pub mod registry;
pub mod sensor;
pub mod series;

pub use forecast::{
    mean_absolute_error, AdaptiveForecaster, Ar1Forecaster, ExponentialSmoothing, Forecaster,
    LastValue, RunningMean, SlidingWindowMean, SlidingWindowMedian,
};
pub use registry::{MonitorRegistry, NodeObservation};
pub use sensor::{BandwidthSensor, CpuLoadSensor, NoisySensor, Sensor};
pub use series::TimeSeries;
