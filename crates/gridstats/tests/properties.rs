//! Property-based tests over the statistics substrate.

use gridstats::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The mean always lies between the minimum and maximum of the sample.
    #[test]
    fn mean_is_bounded(values in prop::collection::vec(-1e9f64..1e9, 1..300)) {
        let m = mean(&values).unwrap();
        // Tolerance covers floating-point summation error at 1e9 magnitudes.
        prop_assert!(m >= min(&values).unwrap() - 1e-3);
        prop_assert!(m <= max(&values).unwrap() + 1e-3);
    }

    /// Sample variance is never negative and is zero for constant samples.
    #[test]
    fn variance_is_non_negative(values in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        prop_assert!(sample_variance(&values).unwrap() >= -1e-9);
    }

    /// Shifting every observation by a constant shifts the mean by the same
    /// constant and leaves the variance unchanged.
    #[test]
    fn shift_invariance(
        values in prop::collection::vec(-1e3f64..1e3, 2..100),
        shift in -1e3f64..1e3,
    ) {
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let dm = mean(&shifted).unwrap() - mean(&values).unwrap();
        prop_assert!((dm - shift).abs() < 1e-6);
        let dv = sample_variance(&shifted).unwrap() - sample_variance(&values).unwrap();
        prop_assert!(dv.abs() < 1e-3);
    }

    /// The median is order-statistic: at least half the sample lies on each side.
    #[test]
    fn median_splits_the_sample(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let med = median(&values).unwrap();
        let below = values.iter().filter(|&&v| v <= med + 1e-9).count();
        let above = values.iter().filter(|&&v| v >= med - 1e-9).count();
        prop_assert!(below * 2 >= values.len());
        prop_assert!(above * 2 >= values.len());
    }

    /// Outlier rejection never removes everything and never invents samples.
    #[test]
    fn outlier_rejection_is_conservative(
        values in prop::collection::vec(-1e4f64..1e4, 1..150),
        k in 0.5f64..5.0,
    ) {
        for policy in [OutlierPolicy::None, OutlierPolicy::Iqr { k }, OutlierPolicy::Mad { k }] {
            let kept = reject_outliers(&values, policy);
            prop_assert!(!kept.is_empty());
            prop_assert!(kept.len() <= values.len());
            prop_assert!(kept.iter().all(|v| values.contains(v)));
        }
    }

    /// Argsort produces a permutation and actually sorts.
    #[test]
    fn argsort_is_a_sorting_permutation(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let order = argsort_ascending(&values);
        let mut seen = vec![false; values.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in order.windows(2) {
            prop_assert!(values[w[0]] <= values[w[1]]);
        }
    }

    /// Spearman correlation is symmetric and bounded in [-1, 1].
    #[test]
    fn spearman_is_symmetric_and_bounded(
        a in prop::collection::vec(-1e3f64..1e3, 3..80),
    ) {
        let b: Vec<f64> = a.iter().map(|v| v * 2.0 + 1.0).collect();
        if let (Some(ab), Some(ba)) = (spearman_rho(&a, &b), spearman_rho(&b, &a)) {
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!((-1.0..=1.0).contains(&ab));
            // b is a monotone transform of a → perfect rank correlation.
            prop_assert!((ab - 1.0).abs() < 1e-9);
        }
    }

    /// A multivariate fit on exactly planar data predicts within tolerance.
    #[test]
    fn multivariate_fit_predicts_planar_data(
        b0 in -10.0f64..10.0,
        b1 in -5.0f64..5.0,
        b2 in -5.0f64..5.0,
        n in 6usize..60,
    ) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| b0 + b1 * r[0] + b2 * r[1]).collect();
        let fit = multivariate_regression(&rows, &y).unwrap();
        let pred = fit.predict(&[3.5, 4.5]).unwrap();
        let expected = b0 + b1 * 3.5 + b2 * 4.5;
        prop_assert!((pred - expected).abs() < 1e-5 * (1.0 + expected.abs()));
    }

    /// Histograms count every in-range observation exactly once.
    #[test]
    fn histogram_conserves_counts(
        values in prop::collection::vec(-50.0f64..150.0, 0..300),
        bins in 1usize..64,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins).unwrap();
        h.record_all(&values);
        let in_range: u64 = h.counts().iter().sum();
        prop_assert_eq!(in_range + h.underflow() + h.overflow(), values.len() as u64);
    }
}
