//! Ranking utilities.
//!
//! Algorithm 1 of the paper ends with "Rank P by extrapolating performance
//! based on T; Select Chosen from P".  These helpers provide the sorting and
//! rank bookkeeping that the calibration module builds that step on, plus a
//! Spearman rank-correlation used by the test-suite and the calibration
//! quality experiment (E1) to compare a computed ranking against the ground
//! truth ordering of the simulated grid.

/// Indices that would sort `values` ascending (stable).
///
/// NaNs are sorted last so that a node whose measurement failed can never be
/// ranked as fittest.
pub fn argsort_ascending(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        let va = values[a];
        let vb = values[b];
        match (va.is_nan(), vb.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => va.partial_cmp(&vb).unwrap(),
        }
    });
    idx
}

/// Indices that would sort `values` descending (stable). NaNs sort last.
pub fn argsort_descending(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        let va = values[a];
        let vb = values[b];
        match (va.is_nan(), vb.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => vb.partial_cmp(&va).unwrap(),
        }
    });
    idx
}

/// Dense ranks (1-based) of each element when sorted ascending; ties receive
/// the same rank and the next distinct value gets the next consecutive rank.
pub fn dense_ranks(values: &[f64]) -> Vec<usize> {
    let order = argsort_ascending(values);
    let mut ranks = vec![0usize; values.len()];
    let mut rank = 0usize;
    let mut prev: Option<f64> = None;
    for &i in &order {
        let v = values[i];
        let is_new = match prev {
            None => true,
            Some(p) => (v - p).abs() > f64::EPSILON || (v.is_nan() && !p.is_nan()),
        };
        if is_new {
            rank += 1;
            prev = Some(v);
        }
        ranks[i] = rank;
    }
    ranks
}

/// Average (fractional) ranks, 1-based, ties sharing the mean of the ranks
/// they span.  This is the definition Spearman's ρ requires.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let order = argsort_ascending(values);
    let n = values.len();
    let mut ranks = vec![0.0f64; n];
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && (values[order[j + 1]] - values[order[i]]).abs() <= f64::EPSILON {
            j += 1;
        }
        // positions i..=j (0-based) share rank mean of (i+1)..=(j+1)
        let shared = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &order[i..=j] {
            ranks[k] = shared;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank-correlation coefficient between two samples of equal length.
///
/// Returns `None` when the lengths differ, there are fewer than two samples,
/// or either ranking is constant (undefined correlation).
pub fn spearman_rho(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    pearson(&ra, &rb)
}

fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    let mut sab = 0.0;
    for i in 0..a.len() {
        let da = a[i] - ma;
        let db = b[i] - mb;
        saa += da * da;
        sbb += db * db;
        sab += da * db;
    }
    if saa < 1e-15 || sbb < 1e-15 {
        return None;
    }
    Some(sab / (saa * sbb).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_ascending_basic() {
        assert_eq!(argsort_ascending(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn argsort_descending_basic() {
        assert_eq!(argsort_descending(&[3.0, 1.0, 2.0]), vec![0, 2, 1]);
    }

    #[test]
    fn argsort_puts_nan_last() {
        assert_eq!(argsort_ascending(&[f64::NAN, 1.0, 2.0]), vec![1, 2, 0]);
        assert_eq!(argsort_descending(&[f64::NAN, 1.0, 2.0]), vec![2, 1, 0]);
    }

    #[test]
    fn argsort_is_stable_for_ties() {
        assert_eq!(argsort_ascending(&[1.0, 1.0, 0.5]), vec![2, 0, 1]);
    }

    #[test]
    fn dense_ranks_with_ties() {
        assert_eq!(dense_ranks(&[10.0, 20.0, 10.0, 30.0]), vec![1, 2, 1, 3]);
    }

    #[test]
    fn dense_ranks_of_sorted_sequence() {
        assert_eq!(dense_ranks(&[1.0, 2.0, 3.0]), vec![1, 2, 3]);
    }

    #[test]
    fn spearman_perfect_agreement() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman_rho(&a, &b).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_perfect_disagreement() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman_rho(&a, &b).unwrap() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [1.0, 2.5, 2.5, 4.0];
        let rho = spearman_rho(&a, &b).unwrap();
        assert!((rho - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_rejects_degenerate() {
        assert!(spearman_rho(&[1.0], &[1.0]).is_none());
        assert!(spearman_rho(&[1.0, 2.0], &[5.0, 5.0]).is_none());
        assert!(spearman_rho(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn average_ranks_split_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
