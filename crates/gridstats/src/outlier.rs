//! Robust outlier rejection for calibration samples.
//!
//! A calibration sample taken while a node suffered a transient spike (page
//! fault storm, competing burst) would poison a least-squares fit.  The
//! calibration layer therefore optionally filters samples through a robust
//! policy before ranking: either interquartile fences (Tukey) or the median
//! absolute deviation rule.

use serde::{Deserialize, Serialize};

use crate::descriptive::{median, percentile};

/// Outlier rejection policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OutlierPolicy {
    /// Keep every sample.
    None,
    /// Tukey fences at `k` interquartile ranges beyond the quartiles
    /// (`k = 1.5` is the conventional value).
    Iqr {
        /// Fence multiplier.
        k: f64,
    },
    /// Reject samples more than `k` scaled median absolute deviations from
    /// the median (`k = 3.0` is the conventional value).
    Mad {
        /// Deviation multiplier.
        k: f64,
    },
}

impl Default for OutlierPolicy {
    fn default() -> Self {
        OutlierPolicy::Iqr { k: 1.5 }
    }
}

/// Median absolute deviation, scaled by 1.4826 so that it estimates the
/// standard deviation for normally distributed data.  `None` when empty.
pub fn mad(xs: &[f64]) -> Option<f64> {
    let m = median(xs)?;
    let devs: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&devs).map(|d| d * 1.4826)
}

/// Tukey fences `(lower, upper)` at `k` IQRs beyond the quartiles.
/// `None` when the sample is empty.
pub fn iqr_fences(xs: &[f64], k: f64) -> Option<(f64, f64)> {
    let q1 = percentile(xs, 25.0)?;
    let q3 = percentile(xs, 75.0)?;
    let iqr = q3 - q1;
    Some((q1 - k * iqr, q3 + k * iqr))
}

/// Apply an [`OutlierPolicy`], returning the retained samples (in the
/// original order).  An empty input yields an empty output; if the policy
/// would reject everything (possible only for pathological `k`), the original
/// data is returned unchanged so callers never lose the whole sample.
pub fn reject_outliers(xs: &[f64], policy: OutlierPolicy) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let kept: Vec<f64> = match policy {
        OutlierPolicy::None => xs.to_vec(),
        OutlierPolicy::Iqr { k } => match iqr_fences(xs, k) {
            Some((lo, hi)) => xs.iter().copied().filter(|&x| x >= lo && x <= hi).collect(),
            None => xs.to_vec(),
        },
        OutlierPolicy::Mad { k } => {
            let m = match median(xs) {
                Some(m) => m,
                None => return xs.to_vec(),
            };
            match mad(xs) {
                Some(d) if d > 0.0 => xs
                    .iter()
                    .copied()
                    .filter(|&x| (x - m).abs() <= k * d)
                    .collect(),
                // Zero MAD means at least half the samples are identical; keep
                // exactly the samples equal to the median.
                Some(_) => xs.iter().copied().filter(|&x| x == m).collect(),
                None => xs.to_vec(),
            }
        }
    };
    if kept.is_empty() {
        xs.to_vec()
    } else {
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mad_of_symmetric_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        // median 3, |devs| = [2,1,0,1,2], median dev 1 → 1.4826
        assert!((mad(&xs).unwrap() - 1.4826).abs() < 1e-9);
    }

    #[test]
    fn mad_empty_is_none() {
        assert!(mad(&[]).is_none());
    }

    #[test]
    fn iqr_fences_cover_clean_data() {
        let xs = [10.0, 11.0, 12.0, 13.0, 14.0];
        let (lo, hi) = iqr_fences(&xs, 1.5).unwrap();
        assert!(xs.iter().all(|&x| x >= lo && x <= hi));
    }

    #[test]
    fn iqr_policy_drops_spike() {
        let xs = [10.0, 11.0, 12.0, 11.5, 10.5, 200.0];
        let kept = reject_outliers(&xs, OutlierPolicy::Iqr { k: 1.5 });
        assert!(!kept.contains(&200.0));
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn mad_policy_drops_spike() {
        let xs = [10.0, 11.0, 12.0, 11.5, 10.5, 200.0];
        let kept = reject_outliers(&xs, OutlierPolicy::Mad { k: 3.0 });
        assert!(!kept.contains(&200.0));
    }

    #[test]
    fn none_policy_keeps_everything() {
        let xs = [1.0, 100.0, 10000.0];
        assert_eq!(reject_outliers(&xs, OutlierPolicy::None), xs.to_vec());
    }

    #[test]
    fn rejection_never_empties_the_sample() {
        let xs = [5.0];
        let kept = reject_outliers(&xs, OutlierPolicy::Mad { k: 0.0 });
        assert!(!kept.is_empty());
    }

    #[test]
    fn zero_mad_keeps_modal_values() {
        let xs = [7.0, 7.0, 7.0, 7.0, 50.0];
        let kept = reject_outliers(&xs, OutlierPolicy::Mad { k: 3.0 });
        assert!(kept.iter().all(|&x| x == 7.0));
        assert_eq!(kept.len(), 4);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(reject_outliers(&[], OutlierPolicy::default()).is_empty());
    }
}
