//! Fixed-width histograms.
//!
//! The benchmark harness uses histograms to summarise task completion-time
//! distributions (e.g. to show how adaptation tightens the tail after a load
//! spike) and the adaptive execution layer uses them to pick percentile-based
//! thresholds.

use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// accumulated in underflow/overflow counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Create a histogram with `bins ≥ 1` equal-width bins spanning `[lo, hi)`.
    /// Returns `None` for an invalid range or zero bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        // NaN bounds fail the finiteness checks, so `hi <= lo` (false for
        // NaN) is equivalent to the NaN-aware `!(hi > lo)` here.
        if bins == 0 || hi <= lo || !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
            sum: 0.0,
        })
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Record an observation.  NaNs are ignored.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.total += 1;
        self.sum += value;
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((value - self.lo) / self.bin_width()) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Record many observations.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Total observations recorded (including under/overflow, excluding NaN).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Lower edge of bin `i`.
    pub fn bin_lower(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.bin_width()
    }

    /// Approximate quantile `q ∈ [0,1]` from the binned data (midpoint of the
    /// bin containing the q-th in-range observation).  `None` when no
    /// observation fell inside the range or `q` is out of bounds.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (q * (in_range as f64 - 1.0)).round() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if c > 0 && cum > target {
                return Some(self.bin_lower(i) + 0.5 * self.bin_width());
            }
        }
        // Should be unreachable, but fall back to the last non-empty bin.
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| self.bin_lower(i) + 0.5 * self.bin_width())
    }

    /// Render the histogram as a simple ASCII bar chart, one bin per line.
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!(
                "[{:>10.3}, {:>10.3}) |{:<width$}| {}\n",
                self.bin_lower(i),
                self.bin_lower(i) + self.bin_width(),
                bar,
                c,
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_none());
    }

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(0.5);
        h.record(5.5);
        h.record(9.99);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn underflow_and_overflow_counted() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-1.0);
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn mean_tracks_all_observations() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record_all(&[1.0, 2.0, 3.0, 14.0]);
        assert!((h.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_of_uniform_spread() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() <= 1.5);
        let p95 = h.quantile(0.95).unwrap();
        assert!((p95 - 94.5).abs() <= 1.5);
    }

    #[test]
    fn quantile_handles_empty_and_invalid() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!(h.quantile(0.5).is_none());
        let mut h2 = Histogram::new(0.0, 1.0, 4).unwrap();
        h2.record(0.5);
        assert!(h2.quantile(1.5).is_none());
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.record_all(&[0.5, 1.5, 1.6, 3.5]);
        let art = h.to_ascii(20);
        assert_eq!(art.lines().count(), 4);
    }
}
