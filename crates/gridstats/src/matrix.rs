//! A small dense, row-major `f64` matrix.
//!
//! Ordinary least squares over the handful of predictors GRASP calibration
//! uses (execution time, processor load, bandwidth utilisation) only needs
//! tiny matrices — typically `n×3` design matrices and `3×3` normal
//! equations — so this module favours clarity and numerical robustness
//! (partial pivoting) over blocking or SIMD.

use crate::regression::StatsError;
use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major vector.  Returns `None` when the data
    /// length does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Option<Self> {
        if data.len() != rows * cols {
            return None;
        }
        Some(Matrix { rows, cols, data })
    }

    /// Build a matrix from nested row slices. Returns `None` for ragged input
    /// or an empty outer slice.
    pub fn from_rows(rows: &[Vec<f64>]) -> Option<Self> {
        let r = rows.len();
        if r == 0 {
            return None;
        }
        let c = rows[0].len();
        if c == 0 || rows.iter().any(|row| row.len() != c) {
            return None;
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Some(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Build a column vector (n×1 matrix).
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Extract row `i` as a vector.  Panics when out of range (programming
    /// error, not data error).
    pub fn row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.rows, "row index {i} out of range {}", self.rows);
        self.data[i * self.cols..(i + 1) * self.cols].to_vec()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.  Returns an error on a shape mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != rhs.rows {
            return Err(StatsError::ShapeMismatch {
                expected: self.cols,
                found: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Solve the linear system `self * x = b` using Gaussian elimination with
    /// partial pivoting.  `self` must be square and `b` must have matching row
    /// count.  Returns [`StatsError::SingularMatrix`] when a pivot collapses.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix, StatsError> {
        if self.rows != self.cols {
            return Err(StatsError::ShapeMismatch {
                expected: self.rows,
                found: self.cols,
            });
        }
        if b.rows != self.rows {
            return Err(StatsError::ShapeMismatch {
                expected: self.rows,
                found: b.rows,
            });
        }
        let n = self.rows;
        let m = b.cols;
        // Build the augmented matrix [A | b].
        let mut aug = Matrix::zeros(n, n + m);
        for i in 0..n {
            for j in 0..n {
                aug[(i, j)] = self[(i, j)];
            }
            for j in 0..m {
                aug[(i, n + j)] = b[(i, j)];
            }
        }
        // Forward elimination with partial pivoting.
        for col in 0..n {
            let mut pivot_row = col;
            let mut pivot_val = aug[(col, col)].abs();
            for r in (col + 1)..n {
                let v = aug[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(StatsError::SingularMatrix);
            }
            if pivot_row != col {
                for j in 0..(n + m) {
                    let tmp = aug[(col, j)];
                    aug[(col, j)] = aug[(pivot_row, j)];
                    aug[(pivot_row, j)] = tmp;
                }
            }
            let pivot = aug[(col, col)];
            for r in (col + 1)..n {
                let factor = aug[(r, col)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..(n + m) {
                    aug[(r, j)] -= factor * aug[(col, j)];
                }
            }
        }
        // Back substitution.
        let mut x = Matrix::zeros(n, m);
        for j in 0..m {
            for i in (0..n).rev() {
                let mut acc = aug[(i, n + j)];
                for k in (i + 1)..n {
                    acc -= aug[(i, k)] * x[(k, j)];
                }
                x[(i, j)] = acc / aug[(i, i)];
            }
        }
        Ok(x)
    }

    /// Matrix inverse via [`Matrix::solve`] against the identity.
    pub fn inverse(&self) -> Result<Matrix, StatsError> {
        self.solve(&Matrix::identity(self.rows))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Element-wise maximum absolute difference against another matrix of the
    /// same shape; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(None, |acc, d| Some(acc.map_or(d, |m: f64| m.max(d))))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a).unwrap(), a);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(approx(c[(0, 0)], 58.0));
        assert!(approx(c[(0, 1)], 64.0));
        assert!(approx(c[(1, 0)], 139.0));
        assert!(approx(c[(1, 1)], 154.0));
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(StatsError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  => x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let b = Matrix::column(&[5.0, 10.0]);
        let x = a.solve(&b).unwrap();
        assert!(approx(x[(0, 0)], 1.0));
        assert!(approx(x[(1, 0)], 3.0));
    }

    #[test]
    fn solve_requires_pivoting() {
        // The (0,0) entry is zero: naive elimination would divide by zero.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let b = Matrix::column(&[2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert!(approx(x[(0, 0)], 3.0));
        assert!(approx(x[(1, 0)], 2.0));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let b = Matrix::column(&[1.0, 2.0]);
        assert!(matches!(a.solve(&b), Err(StatsError::SingularMatrix)));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-9);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_none());
        assert!(Matrix::from_rows(&[]).is_none());
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!(approx(a.frobenius_norm(), 5.0));
    }

    #[test]
    fn row_extraction() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), vec![3.0, 4.0]);
    }
}
