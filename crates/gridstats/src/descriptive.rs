//! Descriptive statistics over `f64` samples.
//!
//! These are the primitives used by the calibration ranking (mean execution
//! time per node, coefficient of variation to detect unstable nodes) and by
//! the benchmark harness when it aggregates repeated runs.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of a sample. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Weighted arithmetic mean.  Returns `None` when the slices differ in length,
/// are empty, or the weights sum to zero.
pub fn weighted_mean(xs: &[f64], weights: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != weights.len() {
        return None;
    }
    let wsum: f64 = weights.iter().sum();
    if wsum == 0.0 {
        return None;
    }
    let acc: f64 = xs.iter().zip(weights).map(|(x, w)| x * w).sum();
    Some(acc / wsum)
}

/// Geometric mean of strictly positive samples; `None` if empty or any value
/// is non-positive.  Used for aggregating speedups across workloads.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Harmonic mean of strictly positive samples; `None` if empty or any value is
/// non-positive.  Used for aggregating throughput rates.
pub fn harmonic_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let recip_sum: f64 = xs.iter().map(|x| 1.0 / x).sum();
    Some(xs.len() as f64 / recip_sum)
}

/// Unbiased (n−1) sample variance. Returns `None` for fewer than two samples.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / (xs.len() as f64 - 1.0))
}

/// Population (n) variance. Returns `None` for an empty slice.
pub fn population_variance(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / xs.len() as f64)
}

/// Sample standard deviation (square root of the unbiased variance).
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    sample_variance(xs).map(f64::sqrt)
}

/// Coefficient of variation (σ/μ).  Returns `None` when the mean is zero or
/// there are fewer than two samples.  GRASP uses it to flag nodes whose
/// calibration samples are too noisy to trust.
pub fn coefficient_of_variation(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    if m == 0.0 {
        return None;
    }
    Some(std_dev(xs)? / m)
}

/// Median (linear-interpolation free: lower-biased for even lengths is not
/// used; the conventional average-of-middle-two definition is).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Minimum value, `None` when empty. NaNs are ignored.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(a) => a.min(x),
            })
        })
}

/// Maximum value, `None` when empty. NaNs are ignored.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(a) => a.max(x),
            })
        })
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// Uses the common "type 7" (Excel / NumPy default) definition.  Returns
/// `None` for an empty slice or `p` outside the valid range.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (n as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Z-scores of a sample (empty output when variance is undefined or zero).
pub fn zscores(xs: &[f64]) -> Vec<f64> {
    match (mean(xs), std_dev(xs)) {
        (Some(m), Some(s)) if s > 0.0 => xs.iter().map(|x| (x - m) / s).collect(),
        _ => Vec::new(),
    }
}

/// A compact five-number-plus summary of a sample, convenient for reporting
/// experiment results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of (non-NaN) observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when count < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample; `None` when the slice is empty (or all NaN).
    pub fn of(xs: &[f64]) -> Option<Self> {
        let clean: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        if clean.is_empty() {
            return None;
        }
        Some(Summary {
            count: clean.len(),
            mean: mean(&clean)?,
            std_dev: std_dev(&clean).unwrap_or(0.0),
            min: min(&clean)?,
            p25: percentile(&clean, 25.0)?,
            median: median(&clean)?,
            p75: percentile(&clean, 75.0)?,
            max: max(&clean)?,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// Relative spread (coefficient of variation); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn mean_of_empty_is_none() {
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0, 4.0]).unwrap() - 2.5).abs() < EPS);
    }

    #[test]
    fn weighted_mean_matches_unweighted_for_equal_weights() {
        let xs = [2.0, 4.0, 6.0];
        let w = [1.0, 1.0, 1.0];
        assert!((weighted_mean(&xs, &w).unwrap() - mean(&xs).unwrap()).abs() < EPS);
    }

    #[test]
    fn weighted_mean_rejects_mismatched_lengths() {
        assert!(weighted_mean(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn weighted_mean_rejects_zero_weight_sum() {
        assert!(weighted_mean(&[1.0, 2.0], &[0.0, 0.0]).is_none());
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_rejects_nonpositive() {
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -1.0]).is_none());
    }

    #[test]
    fn harmonic_mean_basic() {
        // harmonic mean of 1 and 3 is 1.5
        assert!((harmonic_mean(&[1.0, 3.0]).unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert!(sample_variance(&[5.0, 5.0, 5.0]).unwrap().abs() < EPS);
    }

    #[test]
    fn sample_variance_known_value() {
        // variance of 2,4,4,4,5,5,7,9 (population) = 4; sample = 32/7
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_variance(&xs).unwrap() - 4.0).abs() < EPS);
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < EPS);
    }

    #[test]
    fn variance_requires_two_samples() {
        assert!(sample_variance(&[1.0]).is_none());
    }

    #[test]
    fn median_odd_and_even() {
        assert!((median(&[3.0, 1.0, 2.0]).unwrap() - 2.0).abs() < EPS);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]).unwrap() - 2.5).abs() < EPS);
    }

    #[test]
    fn percentile_extremes() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((percentile(&xs, 0.0).unwrap() - 1.0).abs() < EPS);
        assert!((percentile(&xs, 100.0).unwrap() - 5.0).abs() < EPS);
        assert!(percentile(&xs, 101.0).is_none());
        assert!(percentile(&xs, -1.0).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0];
        assert!((percentile(&xs, 50.0).unwrap() - 15.0).abs() < EPS);
        assert!((percentile(&xs, 25.0).unwrap() - 12.5).abs() < EPS);
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(max(&xs), Some(3.0));
        assert!(min(&[f64::NAN]).is_none());
    }

    #[test]
    fn zscores_have_zero_mean_unit_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let z = zscores(&xs);
        assert_eq!(z.len(), xs.len());
        assert!(mean(&z).unwrap().abs() < 1e-9);
        assert!((sample_variance(&z).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zscores_of_constant_is_empty() {
        assert!(zscores(&[2.0, 2.0, 2.0]).is_empty());
    }

    #[test]
    fn cv_detects_relative_noise() {
        let quiet = coefficient_of_variation(&[100.0, 101.0, 99.0]).unwrap();
        let noisy = coefficient_of_variation(&[100.0, 150.0, 50.0]).unwrap();
        assert!(quiet < noisy);
    }

    #[test]
    fn summary_is_consistent() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < EPS);
        assert!((s.median - 3.0).abs() < EPS);
        assert!((s.min - 1.0).abs() < EPS);
        assert!((s.max - 5.0).abs() < EPS);
        assert!(s.iqr() > 0.0);
        assert!(s.cv() > 0.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[f64::NAN]).is_none());
    }
}
