//! # gridstats — statistical substrate for GRASP calibration
//!
//! The GRASP calibration phase (Algorithm 1 of the PPoPP'07 paper) ranks grid
//! nodes "by extrapolating their performance based on the execution times
//! only (the faster a node the fitter it is), or on statistical functions,
//! such as univariate and multivariate linear regression involving execution
//! time, processor load, and bandwidth utilisation".
//!
//! This crate provides, from scratch and without external numeric
//! dependencies, everything those statistical functions need:
//!
//! * [`descriptive`] — means, variances, medians, quantiles, coefficients of
//!   variation, weighted means and z-scores;
//! * [`matrix`] — a small dense row-major matrix with the operations needed
//!   by ordinary least squares (multiplication, transpose, Gaussian
//!   elimination with partial pivoting, inversion);
//! * [`regression`] — univariate and multivariate ordinary least squares,
//!   with goodness-of-fit diagnostics (R², adjusted R², residuals);
//! * [`ranking`] — ranking utilities (argsort, dense ranks, rank
//!   correlation) used to order nodes by fitness;
//! * [`outlier`] — robust outlier rejection (median absolute deviation,
//!   interquartile fences) used to discard pathological calibration samples;
//! * [`histogram`] — fixed-width histograms used by the benchmark harness to
//!   summarise completion-time distributions.
//!
//! All routines operate on `f64` slices, are deterministic, and are
//! panic-free on well-formed input; degenerate inputs (empty slices, singular
//! systems) are reported through `Option`/[`StatsError`] rather than panics so
//! that the calibration layer can fall back to time-only ranking.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod descriptive;
pub mod histogram;
pub mod matrix;
pub mod outlier;
pub mod ranking;
pub mod regression;

pub use descriptive::{
    coefficient_of_variation, geometric_mean, harmonic_mean, max, mean, median, min, percentile,
    population_variance, sample_variance, std_dev, weighted_mean, zscores, Summary,
};
pub use histogram::Histogram;
pub use matrix::Matrix;
pub use outlier::{iqr_fences, mad, reject_outliers, OutlierPolicy};
pub use ranking::{argsort_ascending, argsort_descending, dense_ranks, spearman_rho};
pub use regression::{
    linear_regression, multivariate_regression, LinearFit, MultivariateFit, StatsError,
};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
