//! Univariate and multivariate ordinary least squares.
//!
//! GRASP's statistical calibration "adjusts" the raw execution-time table
//! using "univariate and multivariate linear regression involving execution
//! time, processor load, and bandwidth utilisation" (Algorithm 1).  The
//! calibration layer in `grasp-core` fits a model
//!
//! ```text
//! exec_time ≈ β₀ + β₁·cpu_load + β₂·(1 − bandwidth_avail) + …
//! ```
//!
//! per node pool and uses the fitted coefficients to *extrapolate* what a
//! node's execution time would be under projected resource conditions, which
//! is what the ranking is then based on.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by the statistics layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatsError {
    /// Not enough observations for the requested fit.
    InsufficientData {
        /// Observations required.
        needed: usize,
        /// Observations supplied.
        got: usize,
    },
    /// Two inputs that must agree in length/shape did not.
    ShapeMismatch {
        /// Expected dimension.
        expected: usize,
        /// Found dimension.
        found: usize,
    },
    /// The normal-equations matrix was singular (e.g. perfectly collinear
    /// predictors, or a constant predictor column).
    SingularMatrix,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InsufficientData { needed, got } => {
                write!(
                    f,
                    "insufficient data: need {needed} observations, got {got}"
                )
            }
            StatsError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            StatsError::SingularMatrix => write!(f, "singular matrix in least-squares solve"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Result of a univariate (simple) linear regression `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Intercept β₀.
    pub intercept: f64,
    /// Slope β₁.
    pub slope: f64,
    /// Coefficient of determination R² in `[0, 1]` (1 when the fit is exact).
    pub r_squared: f64,
    /// Number of observations used.
    pub n: usize,
}

impl LinearFit {
    /// Predicted response at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit `y = β₀ + β₁·x` by ordinary least squares.
///
/// Requires at least two observations and a non-constant predictor.
pub fn linear_regression(x: &[f64], y: &[f64]) -> Result<LinearFit, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::ShapeMismatch {
            expected: x.len(),
            found: y.len(),
        });
    }
    let n = x.len();
    if n < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: n });
    }
    let nf = n as f64;
    let mean_x = x.iter().sum::<f64>() / nf;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mean_x;
        let dy = y[i] - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx < 1e-15 {
        return Err(StatsError::SingularMatrix);
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy < 1e-15 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LinearFit {
        intercept,
        slope,
        r_squared,
        n,
    })
}

/// Result of a multivariate OLS fit `y = β₀ + Σ βᵢ·xᵢ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultivariateFit {
    /// Coefficients `[β₀, β₁, …, βₖ]`; index 0 is the intercept.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Adjusted R² (penalises extra predictors); equals R² when n ≤ k+1 makes
    /// the adjustment undefined.
    pub adjusted_r_squared: f64,
    /// Residuals yᵢ − ŷᵢ in observation order.
    pub residuals: Vec<f64>,
    /// Number of observations.
    pub n: usize,
    /// Number of predictors (excluding the intercept).
    pub k: usize,
}

impl MultivariateFit {
    /// Predicted response for a predictor vector (length must equal `k`).
    /// Returns `None` on a length mismatch.
    pub fn predict(&self, xs: &[f64]) -> Option<f64> {
        if xs.len() != self.k {
            return None;
        }
        let mut y = self.coefficients[0];
        for (i, x) in xs.iter().enumerate() {
            y += self.coefficients[i + 1] * x;
        }
        Some(y)
    }

    /// Root-mean-square error of the fit.
    pub fn rmse(&self) -> f64 {
        if self.residuals.is_empty() {
            return 0.0;
        }
        let ss: f64 = self.residuals.iter().map(|r| r * r).sum();
        (ss / self.residuals.len() as f64).sqrt()
    }
}

/// Fit a multivariate OLS model with intercept.
///
/// `rows` holds one predictor vector per observation (all the same length
/// `k ≥ 1`), `y` the responses.  Requires `n ≥ k + 1` observations.
pub fn multivariate_regression(
    rows: &[Vec<f64>],
    y: &[f64],
) -> Result<MultivariateFit, StatsError> {
    let n = rows.len();
    if n != y.len() {
        return Err(StatsError::ShapeMismatch {
            expected: n,
            found: y.len(),
        });
    }
    if n == 0 {
        return Err(StatsError::InsufficientData { needed: 2, got: 0 });
    }
    let k = rows[0].len();
    if k == 0 {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    if rows.iter().any(|r| r.len() != k) {
        return Err(StatsError::ShapeMismatch {
            expected: k,
            found: rows.iter().map(|r| r.len()).find(|&l| l != k).unwrap_or(k),
        });
    }
    if n < k + 1 {
        return Err(StatsError::InsufficientData {
            needed: k + 1,
            got: n,
        });
    }

    // Design matrix with a leading column of ones for the intercept.
    let mut design = Matrix::zeros(n, k + 1);
    for i in 0..n {
        design[(i, 0)] = 1.0;
        for j in 0..k {
            design[(i, j + 1)] = rows[i][j];
        }
    }
    let yv = Matrix::column(y);
    let xt = design.transpose();
    let xtx = xt.matmul(&design)?;
    let xty = xt.matmul(&yv)?;
    let beta = xtx.solve(&xty)?;

    let coefficients: Vec<f64> = (0..=k).map(|i| beta[(i, 0)]).collect();

    // Goodness of fit.
    let fitted = design.matmul(&beta)?;
    let mean_y = y.iter().sum::<f64>() / n as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    let mut residuals = Vec::with_capacity(n);
    for i in 0..n {
        let resid = y[i] - fitted[(i, 0)];
        residuals.push(resid);
        ss_res += resid * resid;
        let d = y[i] - mean_y;
        ss_tot += d * d;
    }
    let r_squared = if ss_tot < 1e-15 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    let adjusted_r_squared = if n > k + 1 {
        1.0 - (1.0 - r_squared) * ((n - 1) as f64) / ((n - k - 1) as f64)
    } else {
        r_squared
    };

    Ok(MultivariateFit {
        coefficients,
        r_squared,
        adjusted_r_squared,
        residuals,
        n,
        k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn univariate_recovers_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 + 2.0 * v).collect();
        let fit = linear_regression(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!((fit.predict(10.0) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn univariate_rejects_constant_predictor() {
        let x = [2.0, 2.0, 2.0];
        let y = [1.0, 2.0, 3.0];
        assert!(matches!(
            linear_regression(&x, &y),
            Err(StatsError::SingularMatrix)
        ));
    }

    #[test]
    fn univariate_rejects_mismatched_lengths() {
        assert!(matches!(
            linear_regression(&[1.0, 2.0], &[1.0]),
            Err(StatsError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn univariate_requires_two_points() {
        assert!(matches!(
            linear_regression(&[1.0], &[1.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn univariate_r_squared_degrades_with_noise() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let clean: Vec<f64> = x.iter().map(|v| 1.0 + 0.5 * v).collect();
        // Deterministic "noise" with zero mean.
        let noisy: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 1.0 + 0.5 * v + if i % 2 == 0 { 4.0 } else { -4.0 })
            .collect();
        let f_clean = linear_regression(&x, &clean).unwrap();
        let f_noisy = linear_regression(&x, &noisy).unwrap();
        assert!(f_clean.r_squared > f_noisy.r_squared);
    }

    #[test]
    fn multivariate_recovers_plane() {
        // y = 1 + 2·a − 3·b
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[0] - 3.0 * r[1]).collect();
        let fit = multivariate_regression(&rows, &y).unwrap();
        assert!((fit.coefficients[0] - 1.0).abs() < 1e-6);
        assert!((fit.coefficients[1] - 2.0).abs() < 1e-6);
        assert!((fit.coefficients[2] + 3.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.999999);
        assert!(fit.rmse() < 1e-6);
        assert!((fit.predict(&[5.0, 2.0]).unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn multivariate_matches_univariate_for_single_predictor() {
        let x = [1.0, 2.0, 3.0, 5.0, 8.0];
        let y = [2.1, 3.9, 6.2, 9.8, 16.1];
        let uni = linear_regression(&x, &y).unwrap();
        let rows: Vec<Vec<f64>> = x.iter().map(|v| vec![*v]).collect();
        let multi = multivariate_regression(&rows, &y).unwrap();
        assert!((multi.coefficients[0] - uni.intercept).abs() < 1e-9);
        assert!((multi.coefficients[1] - uni.slope).abs() < 1e-9);
        assert!((multi.r_squared - uni.r_squared).abs() < 1e-9);
    }

    #[test]
    fn multivariate_detects_collinearity() {
        // Second predictor is exactly twice the first → singular normal matrix.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(matches!(
            multivariate_regression(&rows, &y),
            Err(StatsError::SingularMatrix)
        ));
    }

    #[test]
    fn multivariate_requires_enough_observations() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let y = vec![1.0, 2.0];
        assert!(matches!(
            multivariate_regression(&rows, &y),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn multivariate_rejects_ragged_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        let y = vec![1.0, 2.0];
        assert!(matches!(
            multivariate_regression(&rows, &y),
            Err(StatsError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn predict_rejects_wrong_arity() {
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] + r[1]).collect();
        let fit = multivariate_regression(&rows, &y).unwrap();
        assert!(fit.predict(&[1.0]).is_none());
        assert!(fit.predict(&[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn adjusted_r_squared_never_exceeds_r_squared() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, ((i * 13) % 11) as f64, ((i * 7) % 5) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| r[0] * 1.5 + r[1] - r[2] + (i % 4) as f64)
            .collect();
        let fit = multivariate_regression(&rows, &y).unwrap();
        assert!(fit.adjusted_r_squared <= fit.r_squared + 1e-12);
    }
}
