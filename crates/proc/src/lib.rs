//! # grasp-proc — process-isolated execution backend for GRASP skeletons
//!
//! The paper's environment is a *computational grid*: workers are remote OS
//! instances that receive serialized tasks over links, can disappear without
//! unwinding anything, and are observed only through monitoring messages.
//! The shared-memory `ThreadBackend` cannot faithfully exercise any of that
//! — a panicking thread still unwinds through `catch_unwind` in the same
//! address space, and nothing ever has to be serialized.
//!
//! [`ProcBackend`] closes the gap on a single machine:
//!
//! * every worker is a **separate OS process** (the `grasp-proc-worker`
//!   binary) connected to the master by pipes;
//! * tasks and results cross the boundary as versioned, checksummed frames
//!   ([`grasp_core::wire`]) — the serialization cost is real and reported
//!   ([`grasp_core::OutcomeDetail::ProcFarm`]);
//! * workers send per-unit wall observations upstream and the master drives
//!   the backend-neutral [`grasp_core::engine::AdaptationEngine`] in
//!   executor mode, so calibrate → monitor → threshold-*Z* → demote/resample
//!   works unchanged — *demotion closes the worker's channel*;
//! * a hard-killed worker (`kill -9`) is detected by pipe EOF and by a
//!   heartbeat timeout in the [`gridmon::MonitorRegistry`], and its
//!   in-flight units are requeued exactly like the simulated grid's
//!   revocation path, so unit conservation and the
//!   [`grasp_core::ResilienceReport`] hold.
//!
//! ## The worker binary
//!
//! Workers are a re-exec of [`worker::run_stdio`] packaged as the
//! `grasp-proc-worker` binary of the workspace root (`cargo build` produces
//! it next to every other artefact).  The backend resolves it through, in
//! order: an explicit [`grasp_core::config::BackendConfig::worker_bin`] path
//! (applied via [`ProcBackend::with_config`]), the [`WORKER_BIN_ENV`]
//! environment variable, and a search next to the current executable
//! ([`find_worker_bin`]).
//!
//! ```no_run
//! use grasp_core::{Grasp, GraspConfig, Skeleton, TaskSpec};
//! use grasp_proc::ProcBackend;
//!
//! let skeleton = Skeleton::farm(TaskSpec::uniform(64, 4.0, 1024, 1024));
//! let report = Grasp::new(GraspConfig::default())
//!     .run(&ProcBackend::new(4), &skeleton)
//!     .expect("worker binary built and healthy");
//! assert_eq!(report.outcome.completed, 64);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod backend;
pub mod worker;

pub use backend::{ProcBackend, Transport};

use std::path::PathBuf;

/// Environment variable overriding where the `grasp-proc-worker` binary
/// lives (useful when embedding the backend in a foreign build system).
pub const WORKER_BIN_ENV: &str = "GRASP_PROC_WORKER_BIN";

/// The file name of the worker binary.
pub const WORKER_BIN_NAME: &str = "grasp-proc-worker";

/// Locate the worker binary: [`WORKER_BIN_ENV`] first, then a walk from the
/// current executable's directory upwards (covering `target/<profile>/deps`
/// test binaries, `target/<profile>/examples`, and plain
/// `target/<profile>` binaries).  `None` means the worker has not been
/// built yet — run `cargo build` (the workspace builds it by default) or
/// set the environment override.
pub fn find_worker_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var(WORKER_BIN_ENV) {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..4 {
        let cand = dir.join(format!("{WORKER_BIN_NAME}{}", std::env::consts::EXE_SUFFIX));
        if cand.is_file() {
            return Some(cand);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}
