//! The process-isolated [`Backend`]: skeletons on worker OS processes.
//!
//! The master (this module) spawns `grasp-proc-worker` processes, ships
//! tasks to them as serialized [`grasp_core::wire`] frames over pipes, and
//! collects results, heartbeats, and per-unit wall observations back.  The
//! execution model mirrors the simulated farm's master/worker discipline:
//!
//! * **demand-driven dispatch** — each worker holds a small outstanding
//!   window of units; a result frees a slot and pulls the next pending unit;
//! * **the shared Algorithm-2 loop** — the first `workers × samples`
//!   observations are the calibration sample (Algorithm 1); afterwards every
//!   [`WireMsg::Done`] feeds the backend-neutral [`AdaptationEngine`], whose
//!   directives are applied for real: a demotion **closes the worker's
//!   channel** (it drains its window, hits EOF and exits — the process
//!   boundary's analogue of "stop handing it chunks"), and a whole-pool
//!   breach triggers a re-calibration sample ([`AdaptationEngine::begin_resample`]);
//! * **failure detection** — a worker that dies is noticed twice over:
//!   instantly through pipe EOF, and behind that through a heartbeat timeout
//!   in the [`gridmon::MonitorRegistry`] (catching wedged-but-open
//!   processes).  Either way its in-flight units are requeued to surviving
//!   workers, exactly like the simulated grid's revocation path, so the
//!   conservation invariant and the [`ResilienceReport`] hold.
//!
//! Workers observed only through messages, tasks that exist only as bytes,
//! executors that can vanish without unwinding: this is the paper's grid
//! model made concrete on one machine.

use grasp_core::adaptation::AdaptationLog;
use grasp_core::config::{BackendConfig, ExecutionConfig, FaultInjection};
use grasp_core::engine::{AdaptationDirective, AdaptationEngine, WallClock};
use grasp_core::error::GraspError;
use grasp_core::execution::MonitorVerdict;
use grasp_core::shm::{self, ShmRing};
use grasp_core::skeleton::{
    Backend, OutcomeDetail, ResilienceReport, Skeleton, SkeletonOutcome, UnitSpan,
};
use grasp_core::transport::{spawn_frame_writer, stream_connection, OutMsg, WireCounters};
use grasp_core::wire::WireMsg;
use grasp_core::GraspConfig;
use gridmon::{MonitorRegistry, NodeObservation};
use gridsim::NodeId;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// The process-isolated execution backend for skeleton expressions.
///
/// Every farm-shaped *and* pipeline-shaped expression is lowered through the
/// shared [`Skeleton::lower_to_farm`] rules to a flat unit list (a nested
/// pipeline contributes one unit per stream item carrying the whole per-item
/// stage chain), so unit counts and ids agree with the other backends —
/// what makes cross-backend parity tests possible.  Units execute on worker
/// **processes**: by default the declared work drives the same calibrated
/// spin kernel as the thread backend ([`grasp_core::wire::PAYLOAD_SPIN`]);
/// attach serialized
/// real-kernel payloads with [`ProcBackend::with_payloads`] to make workers
/// compute actual mat-mul bands or imaging frames and report result digests.
#[derive(Debug, Clone)]
pub struct ProcBackend {
    workers: usize,
    /// Explicit worker binary (otherwise [`crate::find_worker_bin`]).
    worker_bin: Option<PathBuf>,
    /// Spin iterations per declared work unit for [`PAYLOAD_SPIN`] units.
    spin_per_work_unit: u64,
    /// Explicit override of the config's calibration sample count.
    calibration_samples: Option<usize>,
    /// How often workers report liveness.
    heartbeat_interval_s: f64,
    /// Silence longer than this declares a worker dead.
    heartbeat_timeout_s: f64,
    /// Units a worker may hold dispatched-but-unfinished (≥ 1).
    outstanding_per_worker: usize,
    /// Bounded dispatches per unit before the run fails.
    max_task_attempts: usize,
    /// Fault injection: SIGKILL worker `.0` after it has delivered `.1`
    /// results (the hard-kill analogue of grid node revocation).
    kill_injection: Option<(usize, usize)>,
    /// Real-kernel payloads by unit id (absent units run the spin kernel).
    /// `Arc` so dispatch clones a pointer, not the bytes.
    payloads: HashMap<usize, (u32, Arc<[u8]>)>,
    /// How frames move between master and workers.
    transport: Transport,
}

/// Which same-host transport carries frames between the master and its
/// worker processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Anonymous pipes over the worker's stdin/stdout (the default).
    #[default]
    Pipes,
    /// A shared-memory ring pair on tmpfs ([`grasp_core::shm`]): no pipe
    /// syscall per frame, frames move through `/dev/shm` pages.
    Shm,
}

impl ProcBackend {
    /// A backend with `workers` worker processes and defaults mirroring
    /// [`grasp_exec::ThreadBackend`] where the knobs coincide.
    pub fn new(workers: usize) -> Self {
        ProcBackend {
            workers: workers.max(1),
            worker_bin: None,
            spin_per_work_unit: 500,
            calibration_samples: None,
            heartbeat_interval_s: 0.25,
            heartbeat_timeout_s: 5.0,
            outstanding_per_worker: 2,
            max_task_attempts: 3,
            kill_injection: None,
            payloads: HashMap::new(),
            transport: Transport::Pipes,
        }
    }

    /// Select the frame transport between master and workers.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Apply a shared [`BackendConfig`]: the one builder every backend
    /// understands.  Unset fields keep this backend's defaults.  The
    /// `worker_panic_budget` knob has no process analogue — a worker
    /// process dies with its panic and the master's requeue path takes
    /// over — and is ignored.  The plan's [`FaultInjection`] is applied as
    /// by [`ProcBackend::with_fault_injection`].
    pub fn with_config(mut self, cfg: BackendConfig) -> Self {
        if let Some(samples) = cfg.calibration_samples {
            self.calibration_samples = Some(samples);
        }
        if let Some(iters) = cfg.spin_per_work_unit {
            self.spin_per_work_unit = iters.max(1);
        }
        if let Some(attempts) = cfg.max_task_attempts {
            self.max_task_attempts = attempts.max(1);
        }
        if let Some((interval_s, timeout_s)) = cfg.heartbeat {
            self.heartbeat_interval_s = interval_s.max(1e-3);
            self.heartbeat_timeout_s = timeout_s.max(10.0 * self.heartbeat_interval_s);
        }
        if let Some(path) = cfg.worker_bin {
            self.worker_bin = Some(path);
        }
        self.with_fault_injection(cfg.faults)
    }

    /// Apply a typed [`FaultInjection`] plan, replacing any previously
    /// configured injection outright.  Processes realise `kill` as a
    /// mid-run SIGKILL of the worker (no unwinding, no goodbye frame —
    /// exactly what a revoked grid node looks like); `panics`, `slowdown`
    /// and `join_spawn` have no process-master analogue — a worker panic
    /// *is* a death (use `kill`), and membership is fixed at spawn — and
    /// are ignored.
    pub fn with_fault_injection(mut self, faults: FaultInjection) -> Self {
        self.kill_injection = faults.kill.map(|k| (k.worker, k.after_results));
        self
    }

    /// Use an explicit worker binary instead of [`crate::find_worker_bin`].
    #[deprecated(note = "use with_config(BackendConfig::new().worker_bin(path))")]
    pub fn with_worker_bin(mut self, path: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(path.into());
        self
    }

    /// Override how many spin iterations one declared work unit costs on a
    /// worker (spin payloads only; clamped to ≥ 1).
    #[deprecated(note = "use with_config(BackendConfig::new().spin_per_work_unit(iters))")]
    pub fn with_spin_per_work_unit(mut self, iters: u64) -> Self {
        self.spin_per_work_unit = iters.max(1);
        self
    }

    /// Override how many probe units form the Algorithm-1 calibration sample
    /// per worker (0 disables the adaptation engine; otherwise
    /// `config.calibration.samples_per_node`).
    #[deprecated(note = "use with_config(BackendConfig::new().calibration_samples(n))")]
    pub fn with_calibration_samples(mut self, samples: usize) -> Self {
        self.calibration_samples = Some(samples);
        self
    }

    /// Override the liveness cadence: workers heartbeat every `interval_s`,
    /// and a worker silent for `timeout_s` is declared dead and its
    /// in-flight units requeued.
    #[deprecated(note = "use with_config(BackendConfig::new().heartbeat(interval_s, timeout_s))")]
    pub fn with_heartbeat(mut self, interval_s: f64, timeout_s: f64) -> Self {
        self.heartbeat_interval_s = interval_s.max(1e-3);
        self.heartbeat_timeout_s = timeout_s.max(10.0 * self.heartbeat_interval_s);
        self
    }

    /// Override how many times one unit may be dispatched before the run
    /// fails with [`GraspError::WorkerFailed`] (clamped to ≥ 1; default 3).
    #[deprecated(note = "use with_config(BackendConfig::new().max_task_attempts(n))")]
    pub fn with_max_task_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = attempts.max(1);
        self
    }

    /// Inject a **hard kill**: after worker `worker` has delivered `results`
    /// completed units, the master SIGKILLs its process mid-run — no signal
    /// handler, no unwinding, no goodbye frame; exactly what a revoked grid
    /// node looks like.  The run must survive it (requeue + continue) and
    /// report the loss in the outcome's [`ResilienceReport`].
    #[deprecated(note = "use with_fault_injection(FaultInjection::none().kill(worker, results))")]
    pub fn with_kill_injection(mut self, worker: usize, results: usize) -> Self {
        self.kill_injection = Some((worker, results));
        self
    }

    /// Attach serialized real-kernel payloads, `(unit id, payload kind,
    /// payload bytes)` — see [`grasp_workloads::matmul::MatMulJob::wire_payloads`]
    /// and [`grasp_workloads::imaging::ImagePipeline::wire_payloads`].
    /// Units without a payload run the spin kernel.
    pub fn with_payloads(mut self, payloads: Vec<(usize, u32, Vec<u8>)>) -> Self {
        for (id, kind, bytes) in payloads {
            self.payloads.insert(id, (kind, bytes.into()));
        }
        self
    }

    /// Number of worker processes.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

/// A skeleton bound to the process backend, ready to execute.
#[derive(Debug, Clone)]
pub struct ProcCompiled {
    /// Flat unit list `(global id, declared work)`.
    units: Vec<(usize, f64)>,
    /// Composition spans for rebuilding per-child outcomes.
    spans: Vec<UnitSpan>,
    kind: grasp_core::SkeletonKind,
    worker_bin: PathBuf,
}

impl Backend for ProcBackend {
    type Compiled = ProcCompiled;

    fn name(&self) -> &'static str {
        "proc"
    }

    fn compile(
        &self,
        config: &GraspConfig,
        skeleton: &Skeleton,
    ) -> Result<Self::Compiled, GraspError> {
        config.validate()?;
        skeleton.validate()?;
        let worker_bin = match &self.worker_bin {
            Some(p) if p.is_file() => p.clone(),
            Some(p) => {
                return Err(GraspError::WorkerUnavailable {
                    detail: format!("worker binary {} does not exist", p.display()),
                })
            }
            None => crate::find_worker_bin().ok_or_else(|| GraspError::WorkerUnavailable {
                detail: format!(
                    "{} binary not found near the current executable; \
                     run `cargo build` first or set {}",
                    crate::WORKER_BIN_NAME,
                    crate::WORKER_BIN_ENV
                ),
            })?,
        };
        let (tasks, spans) = skeleton.lower_to_farm();
        Ok(ProcCompiled {
            units: tasks.iter().map(|t| (t.id, t.work)).collect(),
            spans,
            kind: skeleton.kind(),
            worker_bin,
        })
    }

    fn execute(
        &self,
        config: &GraspConfig,
        compiled: &Self::Compiled,
    ) -> Result<SkeletonOutcome, GraspError> {
        Master::launch(self, config, compiled)?.run()
    }
}

// ---------------------------------------------------------------------------
// master-side machinery
// ---------------------------------------------------------------------------

/// What a reader thread forwards to the master loop.
enum Event {
    Msg(WireMsg),
    /// The worker's stdout closed (clean exit or death) or produced a frame
    /// error; either way no further frames will come from it.
    Closed,
}

/// One spawned worker process, master side.  Dropping it kills and reaps the
/// child, so every error path leaves no orphan behind.
///
/// Outbound frames go through the shared transport writer thread
/// ([`spawn_frame_writer`], owning the child's stdin wrapped as a
/// [`grasp_core::transport::FrameSink`]) rather than being written from the
/// master loop: a worker only reads between tasks, so a blocking write of a
/// large payload into a full pipe would stall the master — and with it the
/// very heartbeat sweep that is supposed to unmask a wedged worker.
/// Closing the channel drops the sender; the writer drains what was queued,
/// then drops the sink (EOF at the worker).
struct WorkerProc {
    child: Child,
    /// `None` once the channel is closed (demotion or death).
    tx: Option<mpsc::Sender<OutMsg>>,
    alive: bool,
    demoted: bool,
    /// `Hello` received — eligible for dispatch.
    ready: bool,
    /// Indices (into the unit list) currently dispatched to this worker.
    in_flight: Vec<usize>,
    /// Units this worker completed.
    completed: usize,
    /// Ring file to unlink after the worker is reaped (shm transport only).
    ring: Option<PathBuf>,
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.tx = None; // close the channel first: a live worker exits cleanly
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(path) = self.ring.take() {
            ShmRing::cleanup(path);
        }
    }
}

/// Master-side driver of the shared adaptation engine (executor mode): the
/// calibration prefix arms it, later observations feed it, and its
/// directives come back to the master loop for application.
struct MasterAdaptation {
    engine: AdaptationEngine,
    calib: Vec<f64>,
    calib_target: usize,
    armed: bool,
    baseline: f64,
    calibration_done_s: f64,
    min_active: usize,
    /// The verdict of the latest evaluation, kept so applied directives are
    /// logged against the table *T* that produced them.
    last_verdict: Option<MonitorVerdict>,
}

impl MasterAdaptation {
    fn new(exec: &ExecutionConfig, calib_target: usize) -> Self {
        MasterAdaptation {
            // Armed with an empty reference sample: Z stays infinite until
            // the calibration prefix completes (same discipline as the
            // thread backend).
            engine: AdaptationEngine::for_executors(exec, &[], gridsim::SimTime::ZERO),
            calib: Vec::with_capacity(calib_target),
            calib_target: calib_target.max(1),
            armed: false,
            baseline: f64::INFINITY,
            calibration_done_s: 0.0,
            min_active: exec.min_active_nodes.max(1),
            last_verdict: None,
        }
    }

    /// Feed one completed unit; returns directives to apply, if an
    /// evaluation was due.
    fn on_done(
        &mut self,
        registry: &mut MonitorRegistry,
        worker: usize,
        work: f64,
        elapsed_s: f64,
        now: gridsim::SimTime,
        job_has_work: bool,
    ) -> Vec<AdaptationDirective> {
        // Unit selection mirrors the other backends: per-work-unit times
        // when the job has real work, raw seconds for pure-transfer jobs.
        if work <= 0.0 && job_has_work {
            return Vec::new();
        }
        let t_norm = if work > 0.0 {
            elapsed_s / work
        } else {
            elapsed_s
        };
        if !self.armed {
            self.calib.push(t_norm);
            if self.calib.len() >= self.calib_target {
                self.engine.calibrate(&self.calib, now);
                self.baseline = self.calib.iter().copied().fold(f64::INFINITY, f64::min);
                self.armed = true;
                self.calibration_done_s = now.as_secs();
            }
            return Vec::new();
        }
        self.engine.observe(NodeId(worker), t_norm);
        registry.record(NodeObservation::from_wall_times(
            NodeId(worker),
            now,
            self.baseline,
            t_norm,
        ));
        match self.engine.poll(now) {
            Some(poll) => {
                // The verdict is consumed here; demotions are re-checked
                // against the pool floor by the caller before being applied.
                self.last_verdict = Some(poll.verdict);
                poll.directives
            }
            None => Vec::new(),
        }
    }
}

struct Master<'a> {
    backend: &'a ProcBackend,
    units: &'a [(usize, f64)],
    spans: &'a [UnitSpan],
    kind: grasp_core::SkeletonKind,
    job_has_work: bool,
    pool: Vec<WorkerProc>,
    rx: mpsc::Receiver<(usize, Event)>,
    clock: WallClock,
    registry: MonitorRegistry,
    adaptation: Option<MasterAdaptation>,
    /// unit id → index into `units`.
    id_to_idx: HashMap<usize, usize>,
    pending: VecDeque<usize>,
    /// Dispatches per unit index (bounded by `max_task_attempts`).
    attempts: Vec<usize>,
    /// unit id → completion time (master clock seconds).
    completions: BTreeMap<usize, f64>,
    /// unit id → worker-reported result digest.
    digests: BTreeMap<usize, u64>,
    /// Unit indices currently owed a re-execution (requeued, not yet done).
    requeued_open: std::collections::BTreeSet<usize>,
    requeued_tasks: usize,
    retried_tasks: usize,
    nodes_lost: usize,
    /// Speculative duplicates in flight: unit index → the idle worker the
    /// duplicate was dispatched to.  Duplicates never touch the attempt
    /// budget; `completions`' first-wins dedup settles each race.
    spec_in_flight: HashMap<usize, usize>,
    speculated_units: usize,
    speculation_wins: usize,
    /// Shared with the writer threads, which account bytes, encode time,
    /// write time, and extra payload copies per frame they put on the wire.
    counters: WireCounters,
    /// Shared with the reader-side sources ([`grasp_core::transport::FrameSource::set_byte_counter`]).
    bytes_received: Arc<AtomicU64>,
    kill_injection: Option<(usize, usize)>,
}

impl<'a> Master<'a> {
    fn launch(
        backend: &'a ProcBackend,
        config: &GraspConfig,
        compiled: &'a ProcCompiled,
    ) -> Result<Self, GraspError> {
        let samples = backend
            .calibration_samples
            .unwrap_or(config.calibration.samples_per_node);
        let adaptation = (config.execution.adaptive && samples > 0)
            .then(|| MasterAdaptation::new(&config.execution, backend.workers * samples));
        let (tx, rx) = mpsc::channel();
        let clock = WallClock::start();
        let mut registry = MonitorRegistry::new(NodeId(0), 64);
        let mut pool = Vec::with_capacity(backend.workers);
        let counters = WireCounters::new();
        let bytes_received = Arc::new(AtomicU64::new(0));
        let init = WireMsg::Init {
            heartbeat_interval_s: backend.heartbeat_interval_s,
            spin_per_work_unit: backend.spin_per_work_unit,
        };
        for w in 0..backend.workers {
            // Per-transport spawn: the pipe pair over stdin/stdout, or a
            // shared-memory ring pair the worker attaches to by path.  Either
            // way the result is one framed connection — the same master logic
            // runs unchanged over sockets in `grasp-net`.
            let (child, sink, mut source, ring) = match backend.transport {
                Transport::Pipes => {
                    let mut child = Command::new(&compiled.worker_bin)
                        .stdin(Stdio::piped())
                        .stdout(Stdio::piped())
                        .stderr(Stdio::inherit())
                        .spawn()
                        .map_err(|e| GraspError::WorkerUnavailable {
                            detail: format!(
                                "could not spawn {}: {e}",
                                compiled.worker_bin.display()
                            ),
                        })?;
                    let stdin = child.stdin.take().expect("stdin was piped");
                    let stdout = child.stdout.take().expect("stdout was piped");
                    let (sink, source) =
                        stream_connection(format!("pipe:{w}"), stdin, stdout).split();
                    (child, sink, source, None)
                }
                Transport::Shm => {
                    let path = shm::ring_path(&format!("w{w}"));
                    let ring = ShmRing::create(&path, shm::DEFAULT_RING_CAPACITY)?;
                    let child = Command::new(&compiled.worker_bin)
                        .arg("--shm")
                        .arg(&path)
                        .stdin(Stdio::null())
                        .stdout(Stdio::null())
                        .stderr(Stdio::inherit())
                        .spawn()
                        .map_err(|e| GraspError::WorkerUnavailable {
                            detail: format!(
                                "could not spawn {}: {e}",
                                compiled.worker_bin.display()
                            ),
                        })?;
                    let (sink, source) = ring.into_halves(child.id() as u64);
                    (
                        child,
                        Box::new(sink) as Box<dyn grasp_core::transport::FrameSink>,
                        Box::new(source) as Box<dyn grasp_core::transport::FrameSource>,
                        Some(path),
                    )
                }
            };
            source.set_byte_counter(Arc::clone(&bytes_received));
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut source = source;
                loop {
                    match source.recv() {
                        Ok(Some(msg)) => {
                            if tx.send((w, Event::Msg(msg))).is_err() {
                                return; // master gone
                            }
                        }
                        Ok(None) | Err(_) => {
                            let _ = tx.send((w, Event::Closed));
                            return;
                        }
                    }
                }
            });
            // Configure the worker immediately; its Hello arrives via the
            // reader.  A spawn that dies instantly surfaces as Closed.
            let out = spawn_frame_writer(sink, counters.clone());
            let write_ok = out.send(init.clone().into()).is_ok();
            // Even before Hello, a worker is on the liveness clock: a binary
            // that wedges without ever speaking still times out.
            registry.note_heartbeat(NodeId(w), clock.now());
            pool.push(WorkerProc {
                child,
                tx: write_ok.then_some(out),
                alive: true,
                demoted: false,
                ready: false,
                in_flight: Vec::new(),
                completed: 0,
                ring,
            });
        }
        let job_has_work = compiled.units.iter().any(|&(_, w)| w > 0.0);
        Ok(Master {
            backend,
            units: &compiled.units,
            spans: &compiled.spans,
            kind: compiled.kind,
            job_has_work,
            pool,
            rx,
            clock,
            registry,
            adaptation,
            id_to_idx: compiled
                .units
                .iter()
                .enumerate()
                .map(|(i, &(id, _))| (id, i))
                .collect(),
            pending: (0..compiled.units.len()).collect(),
            attempts: vec![0; compiled.units.len()],
            completions: BTreeMap::new(),
            digests: BTreeMap::new(),
            requeued_open: std::collections::BTreeSet::new(),
            requeued_tasks: 0,
            retried_tasks: 0,
            nodes_lost: 0,
            spec_in_flight: HashMap::new(),
            speculated_units: 0,
            speculation_wins: 0,
            counters,
            bytes_received,
            kill_injection: backend.kill_injection,
        })
    }

    /// Workers that can accept new units right now.
    fn dispatchable(&self) -> usize {
        self.pool
            .iter()
            .filter(|p| p.alive && !p.demoted && p.tx.is_some())
            .count()
    }

    fn total_in_flight(&self) -> usize {
        self.pool.iter().map(|p| p.in_flight.len()).sum()
    }

    /// Queue one frame to worker `w`'s writer thread (which owns the
    /// serialization cost — encoding and the actual pipe write both happen
    /// off the master loop); `false` means the channel is gone (the caller
    /// decides what that implies).
    fn send_to(&mut self, w: usize, msg: OutMsg) -> bool {
        let Some(out) = self.pool[w].tx.as_ref() else {
            return false;
        };
        out.send(msg).is_ok()
    }

    /// Fill every ready worker's outstanding window from the pending queue.
    fn dispatch_all(&mut self) -> Result<(), GraspError> {
        for w in 0..self.pool.len() {
            loop {
                let p = &self.pool[w];
                if !(p.alive && !p.demoted && p.ready && p.tx.is_some())
                    || p.in_flight.len() >= self.backend.outstanding_per_worker
                {
                    break;
                }
                let Some(idx) = self.pending.pop_front() else {
                    break;
                };
                self.attempts[idx] += 1;
                if self.attempts[idx] > self.backend.max_task_attempts {
                    return Err(GraspError::WorkerFailed {
                        task: self.units[idx].0,
                        attempts: self.attempts[idx],
                    });
                }
                let (id, work) = self.units[idx];
                // Real-kernel payloads ride as `Arc<[u8]>`: dispatch clones a
                // pointer, and the writer thread encodes straight from the
                // shared bytes — no per-dispatch payload copy.
                let msg = match self.backend.payloads.get(&id) {
                    Some((kind, bytes)) => OutMsg::Task {
                        unit_id: id as u64,
                        work,
                        kind: *kind,
                        payload: Arc::clone(bytes),
                    },
                    None => OutMsg::spin_task(id as u64, work),
                };
                if self.send_to(w, msg) {
                    self.pool[w].in_flight.push(idx);
                } else {
                    // Broken pipe: the unit goes back, the worker's fate is
                    // settled by its Closed event / heartbeat timeout.
                    self.pending.push_front(idx);
                    self.attempts[idx] -= 1;
                    self.pool[w].tx = None;
                    break;
                }
            }
        }
        Ok(())
    }

    /// Near the tail — pending queue drained, a few stragglers in flight —
    /// duplicate in-flight units on idle workers when the engine's
    /// `Speculate` directive allows it.  The first result to arrive wins
    /// (`completions`' first-wins dedup settles each race) and the loser
    /// is discarded on arrival; duplicates never touch the attempt budget,
    /// because the primary dispatch owns the retry path.
    fn try_speculate(&mut self) {
        let total = self.units.len();
        if !self.pending.is_empty() || self.completions.len() >= total {
            return;
        }
        loop {
            let in_flight = self.total_in_flight();
            let allowed = match &self.adaptation {
                Some(ad) => ad.engine.maybe_speculate(in_flight, total).is_some(),
                None => false,
            };
            if !allowed {
                return;
            }
            // An idle window slot on a dispatchable worker, counting its
            // speculative duplicates against the same outstanding budget.
            let Some(w) = (0..self.pool.len()).find(|&w| {
                let p = &self.pool[w];
                let spec_held = self.spec_in_flight.values().filter(|&&sw| sw == w).count();
                p.alive
                    && !p.demoted
                    && p.ready
                    && p.tx.is_some()
                    && p.in_flight.len() + spec_held < self.backend.outstanding_per_worker
            }) else {
                return;
            };
            // A straggler worth racing: in flight on a *different* worker
            // and not already duplicated.
            let candidate = self
                .pool
                .iter()
                .enumerate()
                .filter(|&(pw, _)| pw != w)
                .flat_map(|(_, p)| p.in_flight.iter().copied())
                .find(|idx| {
                    !self.spec_in_flight.contains_key(idx)
                        && !self.completions.contains_key(&self.units[*idx].0)
                });
            let Some(idx) = candidate else {
                return;
            };
            let (id, work) = self.units[idx];
            let msg = match self.backend.payloads.get(&id) {
                Some((kind, bytes)) => OutMsg::Task {
                    unit_id: id as u64,
                    work,
                    kind: *kind,
                    payload: Arc::clone(bytes),
                },
                None => OutMsg::spin_task(id as u64, work),
            };
            if !self.send_to(w, msg) {
                // Broken pipe: the worker's fate is settled by its Closed
                // event; nothing was duplicated.
                self.pool[w].tx = None;
                continue;
            }
            let now = self.clock.now();
            self.spec_in_flight.insert(idx, w);
            self.speculated_units += 1;
            if let Some(ad) = &mut self.adaptation {
                ad.engine.note_speculated(now, id, NodeId(w));
            }
        }
    }

    /// A worker is gone (EOF, frame error, or heartbeat timeout): requeue
    /// its in-flight units and account the loss.  Demoted workers drain and
    /// exit by design — their end is not a node loss.
    fn on_worker_gone(&mut self, w: usize) {
        if !self.pool[w].alive {
            return;
        }
        let now = self.clock.now();
        let p = &mut self.pool[w];
        p.alive = false;
        p.ready = false;
        p.tx = None;
        let _ = p.child.kill();
        let _ = p.child.wait();
        let stranded: Vec<usize> = std::mem::take(&mut p.in_flight);
        let was_demoted = p.demoted;
        self.registry.forget_heartbeat(NodeId(w));
        // Speculative duplicates stranded on the dead worker are simply
        // gone — the primary copy lives elsewhere and owns the unit, so
        // requeueing them would double-schedule.
        self.spec_in_flight.retain(|_, &mut sw| sw != w);
        for idx in stranded.iter().rev() {
            self.pending.push_front(*idx);
            self.requeued_open.insert(*idx);
        }
        self.requeued_tasks += stranded.len();
        if !was_demoted {
            self.nodes_lost += 1;
            if let Some(ad) = &mut self.adaptation {
                ad.engine.note_node_lost(now, NodeId(w), stranded.len());
            }
        }
    }

    /// Apply engine directives under the master's pool-floor gating.
    fn apply_directives(&mut self, directives: Vec<AdaptationDirective>) {
        let now = self.clock.now();
        for directive in directives {
            match directive {
                AdaptationDirective::DemoteExecutor {
                    executor,
                    recent_mean,
                } => {
                    let w = executor.index();
                    let Some(min_active) = self.adaptation.as_ref().map(|a| a.min_active) else {
                        continue;
                    };
                    if w < self.pool.len()
                        && self.pool[w].alive
                        && !self.pool[w].demoted
                        && self.dispatchable() > min_active
                    {
                        // Demotion across a process boundary: close the
                        // worker's channel.  It finishes its window, reads
                        // EOF and exits cleanly; remaining results still
                        // flow back over its stdout.
                        self.pool[w].demoted = true;
                        self.pool[w].tx = None;
                        if let Some(ad) = &mut self.adaptation {
                            if let Some(verdict) = ad.last_verdict.clone() {
                                ad.engine.note_demoted(now, executor, recent_mean, &verdict);
                            }
                        }
                    }
                }
                AdaptationDirective::Recalibrate => {
                    let chosen: Vec<NodeId> = self
                        .pool
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.alive && !p.demoted)
                        .map(|(i, _)| NodeId(i))
                        .collect();
                    if let Some(ad) = &mut self.adaptation {
                        if let Some(verdict) = ad.last_verdict.clone() {
                            ad.engine.begin_resample(now, chosen, &verdict);
                        }
                    }
                }
                AdaptationDirective::RemapStage { .. } => {}
                // Speculation is driven from the dispatch loop (the master
                // asks `maybe_speculate` whenever the pending queue drains),
                // so a poll-emitted directive has nothing left to do.
                AdaptationDirective::Speculate { .. } => {}
            }
        }
    }

    fn on_msg(&mut self, w: usize, msg: WireMsg) -> Result<(), GraspError> {
        // Frames from a worker already declared dead (its units were
        // requeued, its heartbeat forgotten) are dropped: acting on them —
        // in particular re-inserting the heartbeat below — would make the
        // liveness sweep re-report the same stale node forever, and a
        // late-arriving node could not re-register cleanly.
        if !self.pool[w].alive {
            return Ok(());
        }
        let now = self.clock.now();
        match msg {
            WireMsg::Hello { .. } => {
                self.pool[w].ready = true;
                self.registry.note_heartbeat(NodeId(w), now);
            }
            WireMsg::Heartbeat => {
                self.registry.note_heartbeat(NodeId(w), now);
            }
            WireMsg::Done {
                unit_id,
                elapsed_s,
                digest,
            } => {
                self.registry.note_heartbeat(NodeId(w), now);
                let Some(&idx) = self.id_to_idx.get(&(unit_id as usize)) else {
                    return Err(GraspError::WireProtocol {
                        detail: format!("worker {w} reported unknown unit {unit_id}"),
                    });
                };
                self.pool[w].in_flight.retain(|&i| i != idx);
                self.pool[w].completed += 1;
                let id = self.units[idx].0;
                // A unit presumed lost (timeout requeue) or speculatively
                // duplicated can be completed by more than one worker: the
                // first digest-carrying completion wins, and the map keeps
                // conservation intact — later copies are discarded on
                // arrival.
                match self.completions.entry(id) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(now.as_secs());
                        self.digests.insert(id, digest);
                        if self.requeued_open.remove(&idx) {
                            self.retried_tasks += 1;
                        }
                        // A settled speculation race: if the winning copy is
                        // the duplicate, the straggler was rescued.
                        if let Some(spec_w) = self.spec_in_flight.remove(&idx) {
                            if spec_w == w {
                                self.speculation_wins += 1;
                                if let Some(ad) = &mut self.adaptation {
                                    ad.engine.note_speculation_won(now, id, NodeId(w));
                                }
                            }
                        }
                    }
                    std::collections::btree_map::Entry::Occupied(_) => {
                        // The losing copy (speculation or timeout-requeue
                        // race): cancelled by discarding its result.
                        self.spec_in_flight.remove(&idx);
                    }
                }
                let directives = match &mut self.adaptation {
                    Some(ad) => ad.on_done(
                        &mut self.registry,
                        w,
                        self.units[idx].1,
                        elapsed_s,
                        now,
                        self.job_has_work,
                    ),
                    None => Vec::new(),
                };
                if !directives.is_empty() {
                    self.apply_directives(directives);
                }
                // Hard-kill injection: after the configured number of
                // results, refill the victim's window so units are genuinely
                // in flight, then SIGKILL it mid-run.
                if let Some((kw, after)) = self.kill_injection {
                    if kw == w && self.pool[w].completed >= after {
                        self.kill_injection = None;
                        self.dispatch_all()?;
                        let _ = self.pool[w].child.kill();
                        // Detection is the real path: pipe EOF / heartbeat
                        // timeout, handled when the Closed event arrives.
                    }
                }
            }
            WireMsg::Failed { unit_id, detail } => {
                self.registry.note_heartbeat(NodeId(w), now);
                let Some(&idx) = self.id_to_idx.get(&(unit_id as usize)) else {
                    return Err(GraspError::WireProtocol {
                        detail: format!("worker {w} failed unknown unit {unit_id}: {detail}"),
                    });
                };
                self.pool[w].in_flight.retain(|&i| i != idx);
                // A failed speculative duplicate is discarded outright: the
                // primary copy owns the unit's retry budget, so requeueing
                // here would double-schedule (and could even fail the run
                // on the duplicate's account).
                if self.spec_in_flight.get(&idx) == Some(&w) {
                    self.spec_in_flight.remove(&idx);
                    return Ok(());
                }
                if self.attempts[idx] >= self.backend.max_task_attempts {
                    return Err(GraspError::WorkerFailed {
                        task: unit_id as usize,
                        attempts: self.attempts[idx],
                    });
                }
                // The worker survives a bad payload; the unit is retried,
                // preferably elsewhere.
                self.pending.push_back(idx);
                self.requeued_open.insert(idx);
                self.requeued_tasks += 1;
            }
            WireMsg::Init { .. } | WireMsg::Task { .. } | WireMsg::Shutdown => {
                return Err(GraspError::WireProtocol {
                    detail: format!("worker {w} sent a master-side frame"),
                });
            }
            // The registration handshake belongs to the socket backend; a
            // pipe worker's identity is its pipe pair, so these frames are
            // as foreign here as a master-side frame.
            WireMsg::Join { .. } | WireMsg::Welcome { .. } | WireMsg::Goodbye { .. } => {
                return Err(GraspError::WireProtocol {
                    detail: format!("worker {w} sent a frame outside the pipe protocol"),
                });
            }
        }
        Ok(())
    }

    fn run(mut self) -> Result<SkeletonOutcome, GraspError> {
        let total = self.units.len();
        let tick =
            Duration::from_secs_f64((self.backend.heartbeat_timeout_s / 8.0).clamp(0.02, 0.25));
        while self.completions.len() < total {
            match self.rx.recv_timeout(tick) {
                Ok((w, Event::Msg(msg))) => self.on_msg(w, msg)?,
                Ok((w, Event::Closed)) => self.on_worker_gone(w),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Every reader exited; any not-yet-processed death is
                    // settled below by the liveness sweep.
                }
            }
            // Liveness sweep: EOF catches most deaths instantly; the
            // heartbeat timeout catches wedged-but-open processes.
            let now = self.clock.now();
            for node in self
                .registry
                .stale_nodes(now, self.backend.heartbeat_timeout_s)
            {
                self.on_worker_gone(node.index());
            }
            self.dispatch_all()?;
            self.try_speculate();
            if self.completions.len() < total
                && self.dispatchable() == 0
                && (!self.pending.is_empty() || self.total_in_flight() == 0)
            {
                return Err(GraspError::WorkerUnavailable {
                    detail: format!(
                        "all {} worker processes lost with {} of {} units unfinished",
                        self.pool.len(),
                        total - self.completions.len(),
                        total
                    ),
                });
            }
        }
        // Orderly shutdown: close every surviving channel (Shutdown frame,
        // then EOF) and reap.  `WorkerProc::drop` guarantees the kill+wait
        // even on the paths above that errored out instead.
        for w in 0..self.pool.len() {
            if self.pool[w].alive {
                let _ = self.send_to(w, WireMsg::Shutdown.into());
                self.pool[w].tx = None;
            }
        }
        let makespan_s = self.clock.now().as_secs();
        let tasks_per_worker: Vec<usize> = self.pool.iter().map(|p| p.completed).collect();
        let workers = self.pool.len();
        self.pool.clear(); // drop = close, kill (no-op for clean exits), reap
        let bytes_received = self.bytes_received.load(Ordering::Relaxed);
        let (calibration_s, adaptation_log) = match self.adaptation {
            Some(ad) => (ad.calibration_done_s, ad.engine.into_log()),
            None => (0.0, AdaptationLog::new()),
        };
        let unit_ids: Vec<usize> = self.completions.keys().copied().collect();
        Ok(SkeletonOutcome {
            kind: self.kind,
            completed: unit_ids.len(),
            unit_ids,
            makespan_s,
            calibration_s,
            adaptation_log,
            resilience: ResilienceReport {
                requeued_tasks: self.requeued_tasks,
                retried_tasks: self.retried_tasks,
                migrated_stages: 0,
                nodes_lost: self.nodes_lost,
                speculated_units: self.speculated_units,
                speculation_wins: self.speculation_wins,
            },
            children: self
                .spans
                .iter()
                .map(|s| s.outcome_from(&self.completions))
                .collect(),
            detail: OutcomeDetail::ProcFarm {
                workers,
                tasks_per_worker,
                bytes_sent: self.counters.bytes.load(Ordering::Relaxed),
                bytes_received,
                wire_write_s: self.counters.write_seconds(),
                wire_encode_s: self.counters.encode_seconds(),
                bytes_copied: self.counters.copied.load(Ordering::Relaxed),
                unit_digests: self.digests.into_iter().collect(),
            },
        })
    }
}
