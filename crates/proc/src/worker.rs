//! The worker side of the process-isolated backend.
//!
//! A worker is a freshly exec'd OS process that speaks the
//! [`grasp_core::wire`] protocol over its standard streams: `stdin` carries
//! master → worker frames, `stdout` carries worker → master frames, and
//! `stderr` is left for human-readable diagnostics.  The lifecycle is
//!
//! 1. send [`WireMsg::Hello`];
//! 2. receive [`WireMsg::Init`] (heartbeat cadence, spin scale);
//! 3. loop: execute [`WireMsg::Task`] frames, answering each with
//!    [`WireMsg::Done`] (or [`WireMsg::Failed`] when the payload cannot be
//!    executed — the worker itself survives a bad payload);
//! 4. exit on [`WireMsg::Shutdown`] or a clean `stdin` EOF (the master
//!    closing a demoted worker's channel *is* the shutdown signal).
//!
//! A dedicated heartbeat thread keeps writing [`WireMsg::Heartbeat`] frames
//! at the configured cadence even while the main thread is deep in a long
//! computation, so the master's liveness timeout only ever fires for
//! processes that are genuinely gone (hard-killed, wedged, or unreachable).

use grasp_core::error::GraspError;
use grasp_core::shm::ShmRing;
use grasp_core::transport::{stream_connection, FrameSink, FrameSource};
use grasp_core::wire::{FrameView, WireMsg, PAYLOAD_IMAGING, PAYLOAD_MATMUL, PAYLOAD_SPIN};
use grasp_workloads::imaging::ImagingFrameTask;
use grasp_workloads::matmul::MatMulBandTask;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Execute one task payload, returning the result digest.
///
/// * [`PAYLOAD_SPIN`] burns the same calibrated spin kernel the thread
///   backend uses, scaled by the unit's declared work (digest 0);
/// * [`PAYLOAD_MATMUL`] / [`PAYLOAD_IMAGING`] decode and run the real
///   `grasp-workloads` kernels, digesting the computed result.
///
/// Unknown kinds and malformed payloads are typed errors — the caller
/// reports them as [`WireMsg::Failed`] and keeps serving.
pub fn execute_payload(
    kind: u32,
    payload: &[u8],
    work: f64,
    spin_per_work_unit: u64,
) -> Result<u64, GraspError> {
    match kind {
        PAYLOAD_SPIN => {
            let iters = (work.max(0.0) * spin_per_work_unit as f64).round() as u64;
            grasp_exec::spin(iters);
            Ok(0)
        }
        PAYLOAD_MATMUL => Ok(MatMulBandTask::decode(payload)?.digest()),
        PAYLOAD_IMAGING => Ok(ImagingFrameTask::decode(payload)?.digest()),
        other => Err(GraspError::WireProtocol {
            detail: format!("unknown task payload kind {other}"),
        }),
    }
}

fn send(out: &Arc<Mutex<Box<dyn FrameSink>>>, msg: &WireMsg) -> Result<(), GraspError> {
    out.lock()
        .unwrap_or_else(|e| e.into_inner())
        .send(msg)
        .map(|_| ())
}

/// Run the worker protocol over this process's standard streams until the
/// master shuts it down; returns the process exit code.
///
/// This is the body of the `grasp-proc-worker` binary (absent `--shm`),
/// kept in the library so any binary can embed a worker mode (the "re-exec
/// the current binary" deployment style) by calling it from `main`.
pub fn run_stdio() -> i32 {
    let (sink, source) =
        stream_connection("stdio".to_string(), std::io::stdout(), std::io::stdin()).split();
    run_transport(sink, source)
}

/// Run the worker protocol over the shared-memory ring at `path` (created
/// by a master using [`crate::Transport::Shm`]); returns the process exit
/// code.
pub fn run_shm(path: &str) -> i32 {
    let (sink, source) = match ShmRing::attach(path) {
        Ok(ring) => ring.into_halves(0),
        Err(e) => {
            eprintln!("grasp-proc-worker: {e}");
            return 2;
        }
    };
    run_transport(Box::new(sink), Box::new(source))
}

/// The transport-generic worker protocol loop.
///
/// Task frames are taken off the wire as borrowed [`FrameView`]s: the
/// payload bytes are executed straight out of the source's reused read
/// buffer, so a worker's steady state does not allocate per task beyond
/// what the kernel itself needs.
pub fn run_transport(sink: Box<dyn FrameSink>, mut source: Box<dyn FrameSource>) -> i32 {
    let sink = Arc::new(Mutex::new(sink));
    if let Err(e) = send(
        &sink,
        &WireMsg::Hello {
            pid: std::process::id() as u64,
        },
    ) {
        eprintln!("grasp-proc-worker: {e}");
        return 2;
    }
    // The master speaks Init first; anything else is a protocol breach.
    let (heartbeat_interval_s, spin_per_work_unit) = match source.recv() {
        Ok(Some(WireMsg::Init {
            heartbeat_interval_s,
            spin_per_work_unit,
        })) => (heartbeat_interval_s, spin_per_work_unit),
        Ok(Some(other)) => {
            eprintln!("grasp-proc-worker: expected Init, got {other:?}");
            return 2;
        }
        Ok(None) => return 0, // master vanished before configuring us
        Err(e) => {
            eprintln!("grasp-proc-worker: {e}");
            return 2;
        }
    };
    // Liveness: beat independently of the (possibly long) computations on
    // the main thread.  The thread dies with the process; a failed write
    // means the master is gone, so it just stops.
    if heartbeat_interval_s > 0.0 {
        let out = Arc::clone(&sink);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_secs_f64(heartbeat_interval_s));
            if send(&out, &WireMsg::Heartbeat).is_err() {
                break;
            }
        });
    }
    loop {
        let reply = match source.recv_view() {
            Ok(Some(FrameView::Task {
                unit_id,
                work,
                kind,
                payload,
            })) => {
                let t0 = Instant::now();
                match execute_payload(kind, payload, work, spin_per_work_unit) {
                    Ok(digest) => WireMsg::Done {
                        unit_id,
                        elapsed_s: t0.elapsed().as_secs_f64(),
                        digest,
                    },
                    Err(e) => WireMsg::Failed {
                        unit_id,
                        detail: e.to_string(),
                    },
                }
            }
            Ok(Some(FrameView::Shutdown)) | Ok(None) => return 0,
            Ok(Some(other)) => {
                eprintln!("grasp-proc-worker: unexpected frame {other:?}");
                return 2;
            }
            Err(e) => {
                eprintln!("grasp-proc-worker: {e}");
                return 2;
            }
        };
        if send(&sink, &reply).is_err() {
            return 0; // master gone; nothing left to serve
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_core::wire::fnv1a_64;
    use grasp_workloads::imaging::ImagePipeline;
    use grasp_workloads::matmul::MatMulJob;

    #[test]
    fn spin_payloads_execute_with_zero_digest() {
        assert_eq!(execute_payload(PAYLOAD_SPIN, &[], 2.0, 10).unwrap(), 0);
        assert_eq!(execute_payload(PAYLOAD_SPIN, &[], -1.0, 10).unwrap(), 0);
    }

    #[test]
    fn real_payloads_execute_to_the_reference_digest() {
        let job = MatMulJob::small();
        let task = job.band_task(1);
        let digest = execute_payload(PAYLOAD_MATMUL, &task.encode(), 1.0, 1).unwrap();
        assert_eq!(digest, task.digest());

        let p = ImagePipeline::small();
        let task = ImagingFrameTask {
            pipeline: p,
            frame: 0,
        };
        let digest = execute_payload(PAYLOAD_IMAGING, &task.encode(), 1.0, 1).unwrap();
        assert_eq!(digest, task.digest());
        assert_ne!(digest, fnv1a_64(b""), "a real frame hashes non-trivially");
    }

    #[test]
    fn bad_payloads_are_typed_errors_not_panics() {
        assert!(execute_payload(PAYLOAD_MATMUL, &[1, 2, 3], 1.0, 1).is_err());
        assert!(execute_payload(PAYLOAD_IMAGING, &[], 1.0, 1).is_err());
        assert!(execute_payload(999, &[], 1.0, 1).is_err());
    }
}
