//! E5 — calibration overhead and its contribution to the overall job.
//!
//! Run with `cargo run --release -p grasp-bench --bin exp_overhead`.
use grasp_bench::experiments::e5_calibration_overhead;
use grasp_bench::{format_table, ScenarioSeed};

fn main() {
    let table = e5_calibration_overhead(&[1, 2, 4, 8, 16], 16, 400, ScenarioSeed::default());
    println!("{}", format_table(&table));
}
