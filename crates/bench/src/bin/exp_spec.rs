//! E17 at paper scale: tail speculation vs none on the Time-Warp
//! transaction farm with a slowed worker (see
//! `experiments::e17_speculation`).
//!
//! `cargo run --release -p grasp-bench --bin exp_spec`

use grasp_bench::experiments::e17_speculation;
use grasp_bench::format_table;

fn main() {
    println!("{}", format_table(&e17_speculation(16, 25.0)));
}
