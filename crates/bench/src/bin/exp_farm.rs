//! E2 — adaptive task farm vs static block vs self-scheduling (bursty grid).
//!
//! Run with `cargo run --release -p grasp-bench --bin exp_farm`.
use grasp_bench::experiments::e2_farm_comparison;
use grasp_bench::{format_series, format_table, ScenarioSeed};

fn main() {
    let (table, series) = e2_farm_comparison(&[4, 8, 16, 32, 64], 600, ScenarioSeed::default());
    println!("{}", format_table(&table));
    println!("{}", format_series(&series));
}
