//! E4 — sensitivity to the performance threshold Z (Algorithm 2 ablation).
//!
//! Run with `cargo run --release -p grasp-bench --bin exp_threshold`.
use grasp_bench::experiments::e4_threshold_sweep;
use grasp_bench::{format_series, format_table, ScenarioSeed};

fn main() {
    let factors = [1.05, 1.25, 1.5, 2.0, 3.0, 4.0];
    let (table, series) = e4_threshold_sweep(&factors, 16, 400, ScenarioSeed::default());
    println!("{}", format_table(&table));
    println!("{}", format_series(&series));
}
