//! E10 — adaptive vs static scheduling under node churn (random revocation
//! and recovery on the simulated grid; injected worker panics on the thread
//! backend), swept over the outage probability.
//!
//! Run with `cargo run --release -p grasp-bench --bin exp_churn`.
use grasp_bench::experiments::e10_churn;
use grasp_bench::{format_table, ScenarioSeed};

fn main() {
    let table = e10_churn(
        16,
        400,
        &[0.2, 0.4, 0.6, 0.8, 1.0],
        20.0,
        ScenarioSeed::default(),
    );
    println!("{}", format_table(&table));
}
