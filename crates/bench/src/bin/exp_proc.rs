//! E12 — thread vs process backends and the serialization overhead, at
//! paper scale.  Requires the `grasp-proc-worker` binary (built by a plain
//! `cargo build` of the workspace).

use grasp_bench::experiments::e12_proc_backend;
use grasp_bench::format_table;

fn main() {
    println!("{}", format_table(&e12_proc_backend(512, 16)));
}
