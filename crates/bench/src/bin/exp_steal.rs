//! E16 at paper scale: work stealing vs demand-driven chunking on an
//! asymmetric thread farm (see `experiments::e16_steal_rebalance`).
//!
//! `cargo run --release -p grasp-bench --bin exp_steal`

use grasp_bench::experiments::e16_steal_rebalance;
use grasp_bench::format_table;

fn main() {
    println!("{}", format_table(&e16_steal_rebalance(2_400, 8.0)));
}
