//! E9 — composed skeletons (farm-of-pipelines, pipeline-of-farms) through
//! the unified `Grasp::run` entry point.
//!
//! Run with `cargo run --release -p grasp-bench --bin exp_nested`.
use grasp_bench::experiments::e9_nested_skeletons;
use grasp_bench::format_table;

fn main() {
    println!("{}", format_table(&e9_nested_skeletons(400, 4, 3)));
}
