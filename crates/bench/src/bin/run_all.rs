//! Run every experiment (E1–E17) and print all tables/series, additionally
//! emitting a machine-readable `BENCH_results.json` so the performance
//! trajectory can be tracked across commits without parsing text tables.
//!
//! ```text
//! cargo run --release -p grasp-bench --bin run_all > results.txt
//! cargo run --release -p grasp-bench --bin run_all -- --smoke   # tiny CI scale
//! cargo run --release -p grasp-bench --bin run_all -- --json out.json
//! cargo run --release -p grasp-bench --bin run_all -- --check out.json --baseline BENCH_baseline.json
//! ```
//!
//! `--smoke` runs every experiment at a reduced scale (seconds, suitable as a
//! CI gate that the whole harness stays runnable); the default is paper
//! scale.  `--json PATH` overrides the output path (default
//! `BENCH_results.json` in the working directory).
//!
//! A panicking experiment no longer aborts the run: its panic is caught and
//! recorded as a structured `{"type":"failed",…}` entry so the remaining
//! experiments still execute and the trajectory file stays complete.
//!
//! `--check PATH` validates a previously written results file instead of
//! running anything: the document must parse, record every experiment, and
//! carry no failure entries; with `--baseline PATH` it additionally gates
//! the performance trajectory (adaptive still beats static in E10, E11
//! still demotes, the experiment set has not shrunk) — see
//! `grasp_bench::gate`.  Exit status 1 signals a gate violation, so CI can
//! use it directly, with no Python in the loop.

use grasp_bench::experiments::*;
use grasp_bench::gate;
use grasp_bench::report::{failed_json, series_json, table_json};
use grasp_bench::{format_series, format_table, ScenarioSeed, Series, Table};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-experiment sizes for one scale, so the invocation sequence below is
/// written exactly once and both scales necessarily cover every experiment.
struct Scale {
    e1: (usize, usize),
    e2: (&'static [usize], usize),
    e3_items: usize,
    e4: (&'static [f64], usize, usize),
    e5: (&'static [usize], usize, usize),
    e6: (&'static [usize], usize),
    e7: (usize, usize),
    e8_samples: usize,
    e9: (usize, usize, usize),
    e10: (usize, usize, &'static [f64], f64),
    e11: (usize, f64),
    e12: (usize, usize),
    e13: (usize, usize),
    e14: (usize, usize),
    e15: (usize, usize),
    e16: (usize, f64),
    e17: (usize, f64),
}

/// Paper scale: the numbers the committed experiment tables use.
const PAPER: Scale = Scale {
    e1: (32, 3),
    e2: (&[4, 8, 16, 32, 64], 600),
    e3_items: 600,
    e4: (&[1.05, 1.25, 1.5, 2.0, 3.0, 4.0], 16, 400),
    e5: (&[1, 2, 4, 8, 16], 16, 400),
    e6: (&[8, 16, 32, 64, 128], 800),
    e7: (16, 800),
    e8_samples: 2_000,
    e9: (400, 4, 3),
    e10: (16, 400, &[0.2, 0.4, 0.6, 0.8, 1.0], 20.0),
    e11: (6_000, 25.0),
    e12: (512, 16),
    e13: (400, 8),
    e14: (60, 8),
    e15: (4_096, 2_000_000),
    e16: (2_400, 8.0),
    e17: (16, 25.0),
};

/// Smoke scale: every experiment at a size that finishes in seconds.
const SMOKE: Scale = Scale {
    e1: (16, 2),
    e2: (&[4, 8], 150),
    e3_items: 150,
    e4: (&[1.25, 2.0], 8, 150),
    e5: (&[1, 4], 8, 120),
    e6: (&[8, 16], 200),
    e7: (8, 200),
    e8_samples: 500,
    e9: (48, 3, 3),
    e10: (8, 160, &[0.5], 15.0),
    e11: (1_200, 25.0),
    e12: (128, 16),
    e13: (80, 4),
    e14: (16, 4),
    // The scale smoke keeps ad-hoc-grid numbers even at CI scale: thousands
    // of nodes, a million units.
    e15: (2_048, 1_000_000),
    e16: (240, 8.0),
    e17: (12, 25.0),
};

/// Collects printed experiment results and their JSON renderings.
#[derive(Default)]
struct Results {
    json_parts: Vec<String>,
    failed: usize,
}

impl Results {
    fn table(&mut self, t: &Table) {
        println!("{}", format_table(t));
        self.json_parts.push(table_json(t));
    }

    fn series(&mut self, s: &Series) {
        println!("{}", format_series(s));
        self.json_parts.push(series_json(s));
    }

    /// Run one experiment, catching any panic: a broken experiment becomes a
    /// structured `failed` record (and drops its partial output) instead of
    /// aborting the rest of the harness.
    fn experiment(&mut self, id: &str, run: impl FnOnce(&mut Results)) {
        let recorded_before = self.json_parts.len();
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| run(self))) {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            self.json_parts.truncate(recorded_before);
            self.json_parts.push(failed_json(id, &message));
            self.failed += 1;
            eprintln!("run_all: {id} FAILED: {message}");
        }
    }

    fn write(&self, path: &str) {
        let doc = format!("{{\"experiments\":[{}]}}\n", self.json_parts.join(","));
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("run_all: could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("run_all: wrote {path}");
        if self.failed > 0 {
            eprintln!(
                "run_all: {} experiment(s) recorded failures (the results file \
                 has the details; `run_all --check` turns them into a red gate)",
                self.failed
            );
        }
    }
}

/// The value following `flag`, if present (a following flag is a forgotten
/// value, not a path).
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Some(v.clone()),
            _ => {
                eprintln!("run_all: {flag} requires a path argument");
                std::process::exit(2);
            }
        },
        None => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Validation mode: judge an existing results file, run nothing.
    if args.iter().any(|a| a == "--check") {
        let results = flag_value(&args, "--check").expect("--check checked above");
        let baseline = flag_value(&args, "--baseline");
        match gate::check_files(&results, baseline.as_deref()) {
            Ok(summary) => println!("run_all --check: {summary}"),
            Err(e) => {
                eprintln!("run_all --check: FAIL: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let scale = if args.iter().any(|a| a == "--smoke") {
        SMOKE
    } else {
        PAPER
    };
    let json_path = flag_value(&args, "--json").unwrap_or_else(|| "BENCH_results.json".to_string());

    let seed = ScenarioSeed::default();
    let mut out = Results::default();

    out.experiment("E1", |out| {
        out.table(&e1_calibration_quality(scale.e1.0, scale.e1.1, seed));
    });
    out.experiment("E2", |out| {
        let (t2, s2) = e2_farm_comparison(scale.e2.0, scale.e2.1, seed);
        out.table(&t2);
        out.series(&s2);
    });
    out.experiment("E3", |out| {
        let (t3, s3) = e3_pipeline_adaptation(scale.e3_items);
        out.table(&t3);
        out.series(&s3);
    });
    out.experiment("E4", |out| {
        let (t4, s4) = e4_threshold_sweep(scale.e4.0, scale.e4.1, scale.e4.2, seed);
        out.table(&t4);
        out.series(&s4);
    });
    out.experiment("E5", |out| {
        out.table(&e5_calibration_overhead(
            scale.e5.0, scale.e5.1, scale.e5.2, seed,
        ));
    });
    out.experiment("E6", |out| {
        out.series(&e6_scalability(scale.e6.0, scale.e6.1, seed));
    });
    out.experiment("E7", |out| {
        let (t7, s7) = e7_adaptation_response(scale.e7.0, scale.e7.1);
        out.table(&t7);
        out.series(&s7);
    });
    out.experiment("E8", |out| {
        out.table(&e8_forecaster_accuracy(scale.e8_samples));
    });
    out.experiment("E9", |out| {
        out.table(&e9_nested_skeletons(scale.e9.0, scale.e9.1, scale.e9.2));
    });
    out.experiment("E10", |out| {
        out.table(&e10_churn(
            scale.e10.0,
            scale.e10.1,
            scale.e10.2,
            scale.e10.3,
            seed,
        ));
    });
    out.experiment("E11", |out| {
        out.table(&e11_thread_slowdown(scale.e11.0, scale.e11.1));
    });
    out.experiment("E12", |out| {
        out.table(&e12_proc_backend(scale.e12.0, scale.e12.1));
    });
    out.experiment("E13", |out| {
        out.table(&e13_net_membership(scale.e13.0, scale.e13.1));
    });
    out.experiment("E14", |out| {
        out.table(&e14_service(scale.e14.0, scale.e14.1));
    });
    out.experiment("E15", |out| {
        out.table(&e15_scale_smoke(scale.e15.0, scale.e15.1, seed));
    });
    out.experiment("E16", |out| {
        out.table(&e16_steal_rebalance(scale.e16.0, scale.e16.1));
    });
    out.experiment("E17", |out| {
        out.table(&e17_speculation(scale.e17.0, scale.e17.1));
    });

    out.write(&json_path);
}
