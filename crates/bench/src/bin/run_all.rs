//! Run every experiment (E1–E11) and print all tables/series, additionally
//! emitting a machine-readable `BENCH_results.json` so the performance
//! trajectory can be tracked across commits without parsing text tables.
//!
//! ```text
//! cargo run --release -p grasp-bench --bin run_all > results.txt
//! cargo run --release -p grasp-bench --bin run_all -- --smoke   # tiny CI scale
//! cargo run --release -p grasp-bench --bin run_all -- --json out.json
//! ```
//!
//! `--smoke` runs every experiment at a reduced scale (seconds, suitable as a
//! CI gate that the whole harness stays runnable); the default is paper
//! scale.  `--json PATH` overrides the output path (default
//! `BENCH_results.json` in the working directory).

use grasp_bench::experiments::*;
use grasp_bench::report::{series_json, table_json};
use grasp_bench::{format_series, format_table, ScenarioSeed, Series, Table};

/// Per-experiment sizes for one scale, so the invocation sequence below is
/// written exactly once and both scales necessarily cover every experiment.
struct Scale {
    e1: (usize, usize),
    e2: (&'static [usize], usize),
    e3_items: usize,
    e4: (&'static [f64], usize, usize),
    e5: (&'static [usize], usize, usize),
    e6: (&'static [usize], usize),
    e7: (usize, usize),
    e8_samples: usize,
    e9: (usize, usize, usize),
    e10: (usize, usize, &'static [f64], f64),
    e11: (usize, f64),
}

/// Paper scale: the numbers the committed experiment tables use.
const PAPER: Scale = Scale {
    e1: (32, 3),
    e2: (&[4, 8, 16, 32, 64], 600),
    e3_items: 600,
    e4: (&[1.05, 1.25, 1.5, 2.0, 3.0, 4.0], 16, 400),
    e5: (&[1, 2, 4, 8, 16], 16, 400),
    e6: (&[8, 16, 32, 64, 128], 800),
    e7: (16, 800),
    e8_samples: 2_000,
    e9: (400, 4, 3),
    e10: (16, 400, &[0.2, 0.4, 0.6, 0.8, 1.0], 20.0),
    e11: (6_000, 25.0),
};

/// Smoke scale: every experiment at a size that finishes in seconds.
const SMOKE: Scale = Scale {
    e1: (16, 2),
    e2: (&[4, 8], 150),
    e3_items: 150,
    e4: (&[1.25, 2.0], 8, 150),
    e5: (&[1, 4], 8, 120),
    e6: (&[8, 16], 200),
    e7: (8, 200),
    e8_samples: 500,
    e9: (48, 3, 3),
    e10: (8, 160, &[0.5], 15.0),
    e11: (1_200, 25.0),
};

/// Collects printed experiment results and their JSON renderings.
#[derive(Default)]
struct Results {
    json_parts: Vec<String>,
}

impl Results {
    fn table(&mut self, t: &Table) {
        println!("{}", format_table(t));
        self.json_parts.push(table_json(t));
    }

    fn series(&mut self, s: &Series) {
        println!("{}", format_series(s));
        self.json_parts.push(series_json(s));
    }

    fn write(&self, path: &str) {
        let doc = format!("{{\"experiments\":[{}]}}\n", self.json_parts.join(","));
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("run_all: could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("run_all: wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        SMOKE
    } else {
        PAPER
    };
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(i) => match args.get(i + 1) {
            // A following flag is a forgotten value, not a path.
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("run_all: --json requires a path argument");
                std::process::exit(2);
            }
        },
        None => "BENCH_results.json".to_string(),
    };

    let seed = ScenarioSeed::default();
    let mut out = Results::default();

    out.table(&e1_calibration_quality(scale.e1.0, scale.e1.1, seed));
    let (t2, s2) = e2_farm_comparison(scale.e2.0, scale.e2.1, seed);
    out.table(&t2);
    out.series(&s2);
    let (t3, s3) = e3_pipeline_adaptation(scale.e3_items);
    out.table(&t3);
    out.series(&s3);
    let (t4, s4) = e4_threshold_sweep(scale.e4.0, scale.e4.1, scale.e4.2, seed);
    out.table(&t4);
    out.series(&s4);
    out.table(&e5_calibration_overhead(
        scale.e5.0, scale.e5.1, scale.e5.2, seed,
    ));
    out.series(&e6_scalability(scale.e6.0, scale.e6.1, seed));
    let (t7, s7) = e7_adaptation_response(scale.e7.0, scale.e7.1);
    out.table(&t7);
    out.series(&s7);
    out.table(&e8_forecaster_accuracy(scale.e8_samples));
    out.table(&e9_nested_skeletons(scale.e9.0, scale.e9.1, scale.e9.2));
    out.table(&e10_churn(
        scale.e10.0,
        scale.e10.1,
        scale.e10.2,
        scale.e10.3,
        seed,
    ));
    out.table(&e11_thread_slowdown(scale.e11.0, scale.e11.1));

    out.write(&json_path);
}
