//! Run every experiment (E1–E10) at paper scale and print all tables/series.
//!
//! `cargo run --release -p grasp-bench --bin run_all > results.txt`
use grasp_bench::experiments::*;
use grasp_bench::{format_series, format_table, ScenarioSeed};

fn main() {
    let seed = ScenarioSeed::default();
    println!("{}", format_table(&e1_calibration_quality(32, 3, seed)));
    let (t2, s2) = e2_farm_comparison(&[4, 8, 16, 32, 64], 600, seed);
    println!("{}\n{}", format_table(&t2), format_series(&s2));
    let (t3, s3) = e3_pipeline_adaptation(600);
    println!("{}\n{}", format_table(&t3), format_series(&s3));
    let (t4, s4) = e4_threshold_sweep(&[1.05, 1.25, 1.5, 2.0, 3.0, 4.0], 16, 400, seed);
    println!("{}\n{}", format_table(&t4), format_series(&s4));
    println!(
        "{}",
        format_table(&e5_calibration_overhead(&[1, 2, 4, 8, 16], 16, 400, seed))
    );
    println!(
        "{}",
        format_series(&e6_scalability(&[8, 16, 32, 64, 128], 800, seed))
    );
    let (t7, s7) = e7_adaptation_response(16, 800);
    println!("{}\n{}", format_table(&t7), format_series(&s7));
    println!("{}", format_table(&e8_forecaster_accuracy(2_000)));
    println!("{}", format_table(&e9_nested_skeletons(400, 4, 3)));
    println!(
        "{}",
        format_table(&e10_churn(16, 400, &[0.2, 0.4, 0.6, 0.8, 1.0], 20.0, seed))
    );
}
