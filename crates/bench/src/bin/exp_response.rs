//! E7 — adaptation response: throughput over time around a load spike.
//!
//! Run with `cargo run --release -p grasp-bench --bin exp_response`.
use grasp_bench::experiments::e7_adaptation_response;
use grasp_bench::{format_series, format_table};

fn main() {
    let (table, series) = e7_adaptation_response(16, 800);
    println!("{}", format_table(&table));
    println!("{}", format_series(&series));
}
