//! E8 — forecaster accuracy of the monitoring substrate.
//!
//! Run with `cargo run --release -p grasp-bench --bin exp_forecast`.
use grasp_bench::experiments::e8_forecaster_accuracy;
use grasp_bench::format_table;

fn main() {
    println!("{}", format_table(&e8_forecaster_accuracy(2_000)));
}
