//! E1 — calibration ranking quality (Algorithm 1 ablation).
//!
//! Run with `cargo run --release -p grasp-bench --bin exp_calibration`.
use grasp_bench::experiments::e1_calibration_quality;
use grasp_bench::{format_table, ScenarioSeed};

fn main() {
    let table = e1_calibration_quality(32, 3, ScenarioSeed::default());
    println!("{}", format_table(&table));
}
