//! E11 at paper scale: demand-driven-only vs full-adaptive threads under an
//! injected worker slowdown (see `experiments::e11_thread_slowdown`).
//!
//! `cargo run --release -p grasp-bench --bin exp_thread_adapt`

use grasp_bench::experiments::e11_thread_slowdown;
use grasp_bench::format_table;

fn main() {
    println!("{}", format_table(&e11_thread_slowdown(6_000, 25.0)));
}
