//! E3 — adaptive pipeline vs rigid stage mapping with a mid-run load spike.
//!
//! Run with `cargo run --release -p grasp-bench --bin exp_pipeline`.
use grasp_bench::experiments::e3_pipeline_adaptation;
use grasp_bench::{format_series, format_table};

fn main() {
    let (table, series) = e3_pipeline_adaptation(600);
    println!("{}", format_table(&table));
    println!("{}", format_series(&series));
}
