//! E13 — dynamic membership on the socket backend (fixed vs growing pool),
//! at paper scale.  Runs over the deterministic loopback transport, so no
//! worker binary or free port is needed.

use grasp_bench::experiments::e13_net_membership;
use grasp_bench::format_table;

fn main() {
    println!("{}", format_table(&e13_net_membership(400, 8)));
}
