//! E14 — resident multi-job service vs per-job pool spin-up, at paper
//! scale.  The same deterministic Poisson stream of mixed-shape jobs runs
//! once through a fresh `ThreadBackend` per job and once through one
//! resident `GraspService` with a shared pool and cached calibration.

use grasp_bench::experiments::e14_service;
use grasp_bench::format_table;

fn main() {
    println!("{}", format_table(&e14_service(60, 8)));
}
