//! E6 — adaptive vs static efficiency as the grid grows.
//!
//! Run with `cargo run --release -p grasp-bench --bin exp_scalability`.
use grasp_bench::experiments::e6_scalability;
use grasp_bench::{format_series, ScenarioSeed};

fn main() {
    let series = e6_scalability(&[8, 16, 32, 64, 128], 800, ScenarioSeed::default());
    println!("{}", format_series(&series));
}
