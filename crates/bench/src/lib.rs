//! # grasp-bench — the experiment harness
//!
//! One module per experiment of DESIGN.md's experiment index (E1–E11), plus
//! shared scenario builders and plain-text table/series formatters.  The
//! `exp_*` binaries under `src/bin/` print the tables and figure series the
//! paper-style evaluation reports; the Criterion benches under `benches/`
//! measure the wall-clock cost of the same code paths.
//!
//! Everything here is deterministic: scenarios are seeded, and the simulated
//! grid advances virtual time only.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod gate;
pub mod report;
pub mod scenarios;

pub use report::{format_series, format_table, Series, Table};
pub use scenarios::{
    bursty_grid, churn_grid, irregular_farm_tasks, loaded_heterogeneous_grid, spike_grid,
    standard_farm_tasks, standard_imaging_job, transient_load_grid, ScenarioSeed,
};
