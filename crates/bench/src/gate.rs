//! The perf-trajectory gate: versioned, testable validation of
//! `BENCH_results.json` (what CI used to do with an inline `python3 -c`).
//!
//! Two layers, both driven by `run_all --check`:
//!
//! 1. **Structural validation** — the results document parses, records at
//!    least one experiment, and records no structured `failed` entries
//!    (`run_all` converts per-experiment panics into those instead of
//!    aborting the whole harness, so the *gate* is where they become red).
//! 2. **Trajectory checks** — the qualitative results the repository's
//!    story rests on must keep holding, with generous tolerance so CI noise
//!    does not flake the build: adaptive must still beat static under churn
//!    (E10), the engine-backed thread variant must still demote the slowed
//!    worker (E11), the resident service must still out-throughput per-job
//!    pool spin-up (E14), tail speculation must not lose to its own
//!    baseline (E17), the data plane must stay zero-copy and cheap to
//!    encode (E12 — absolute ceilings plus per-variant `wire_bytes_per_unit`
//!    / `encode_s` ceilings *learned* from the committed baseline), and —
//!    against that baseline (`BENCH_baseline.json`) — the experiment set
//!    must not shrink.
//!
//! The module carries its own minimal JSON parser: the workspace is offline
//! (no serde_json) and the emitter in [`crate::report`] produces a small,
//! known subset, but the parser accepts any well-formed JSON document so a
//! hand-edited baseline cannot wedge it.

use std::collections::BTreeSet;
use std::fmt;

/// Minimum acceptable `adaptive_speedup` in any E10 row (1.0 = parity with
/// the static baseline; the experiment's claim is a clear win, the gate only
/// demands "not regressed into losing").
pub const E10_MIN_SPEEDUP: f64 = 0.85;

/// Minimum acceptable `job_speedup` in E14's service row (the resident
/// service's job throughput over the per-job spin-up baseline; the
/// experiment's claim is a win, the gate demands "not regressed into
/// clearly losing" with CI-noise headroom).
pub const E14_MIN_JOB_SPEEDUP: f64 = 0.9;

/// Minimum acceptable `steal_speedup` in E16's work-stealing row.  The
/// experiment's claim is a clear rebalancing win on the asymmetric farm;
/// the metric is a rep-averaged weighted critical path (schedule-determined,
/// not wall-clock), so parity is the honest floor: falling below 1.0 means
/// deque dispatch has regressed into losing to the shared demand cursor it
/// exists to beat.
pub const E16_MIN_STEAL_SPEEDUP: f64 = 1.0;

/// Minimum acceptable `spec_tail_speedup` in E17's speculation row.  The
/// metric is a rep-averaged weighted critical path (like E16's), and a
/// speculation win can only move credited work *off* the slowed worker, so
/// parity is the honest floor: falling below 1.0 means launching duplicates
/// has started costing more path than the wins recover.
pub const E17_MIN_SPEC_TAIL_SPEEDUP: f64 = 1.0;

/// Absolute ceiling on E12's master-side frame-encode seconds in any row
/// that crosses a wire.  The zero-copy data plane encodes each frame exactly
/// once into a reused buffer, so even at paper scale the encode cost is
/// milliseconds; a quarter second means a copy crept back onto the dispatch
/// path.
pub const E12_MAX_ENCODE_SECONDS: f64 = 0.25;

/// Ceiling on E12's `bytes_copied_per_unit` (payload bytes copied beyond the
/// one mandatory encode per frame).  E12's process rows ride the pipe
/// transport, which is zero-copy by construction — the gate pins that.
pub const E12_MAX_BYTES_COPIED_PER_UNIT: f64 = 0.0;

/// Headroom factor on the baseline's per-unit wire volume when learning the
/// E12 ceiling: fresh rows may spend up to this multiple of the committed
/// `wire_bytes / units` before the gate calls it a regression.
pub const E12_WIRE_HEADROOM: f64 = 1.5;

/// Absolute slack added on top of the learned E12 wire ceiling: heartbeat
/// frames scale with wall time, not units, so a slow CI machine legitimately
/// ships a few extra frames per unit.
pub const E12_WIRE_SLACK_BYTES_PER_UNIT: f64 = 256.0;

/// Headroom factor on the baseline's encode seconds when learning the E12
/// ceiling (wall-clock across unlike machines is noisy, so the learned check
/// is deliberately loose — the absolute [`E12_MAX_ENCODE_SECONDS`] backstop
/// catches the pathological case).
pub const E12_ENCODE_HEADROOM: f64 = 10.0;

/// Absolute slack added on top of the learned E12 encode ceiling.
pub const E12_ENCODE_SLACK_SECONDS: f64 = 0.05;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like the emitter writes them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value: a JSON number directly, or a string that parses
    /// as one (table cells keep formatted numbers as strings).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Str(s) => s.trim().parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: impl fmt::Display) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > 64 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = match self.value(depth + 1)? {
                        Json::Str(s) => s,
                        _ => return Err(self.err("object key must be a string")),
                    };
                    self.expect(b':')?;
                    fields.push((key, self.value(depth + 1)?));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // BMP only (all the emitter produces); anything
                            // else degrades to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte aware).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// What a passing gate run reports.
#[derive(Debug, Clone)]
pub struct GateSummary {
    /// Number of recorded experiment entries (tables + series).
    pub experiments: usize,
    /// Distinct experiment ids present (`E1`, `E2`, …).
    pub ids: BTreeSet<String>,
}

/// The experiment id (`"E10"`) at the front of a table/series title.
fn title_id(title: &str) -> Option<String> {
    let head = title.split(':').next()?.trim();
    (head.len() >= 2 && head.starts_with('E') && head[1..].chars().all(|c| c.is_ascii_digit()))
        .then(|| head.to_string())
}

fn table_column(entry: &Json, name: &str) -> Option<usize> {
    entry
        .get("headers")?
        .as_arr()?
        .iter()
        .position(|h| h.as_str() == Some(name))
}

/// One E12 row's data-plane metrics, derived from the table cells.
struct E12Row {
    variant: String,
    wire_per_unit: f64,
    encode_s: f64,
    copied_per_unit: f64,
}

/// The data-plane rows of one E12 table entry.  Empty when the table
/// predates the `encode_s`/`bytes_copied_per_unit` columns (old results and
/// baselines stay valid; the ceilings activate with the columns).  Rows that
/// never cross a wire (the in-process `threads` variant) are skipped.
fn e12_data_plane_rows(entry: &Json) -> Vec<E12Row> {
    let cols = (
        table_column(entry, "variant"),
        table_column(entry, "makespan_s"),
        table_column(entry, "units_per_s"),
        table_column(entry, "wire_bytes"),
        table_column(entry, "encode_s"),
        table_column(entry, "bytes_copied_per_unit"),
    );
    let (Some(variant), Some(makespan), Some(units_per_s), Some(wire), Some(encode), Some(copied)) =
        cols
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for row in entry.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
        let cells = row.as_arr().unwrap_or(&[]);
        let num = |i: usize| cells.get(i).and_then(Json::as_f64);
        let (Some(m), Some(ups), Some(w), Some(e), Some(c)) = (
            num(makespan),
            num(units_per_s),
            num(wire),
            num(encode),
            num(copied),
        ) else {
            continue;
        };
        if w <= 0.0 {
            continue;
        }
        let Some(name) = cells.get(variant).and_then(Json::as_str) else {
            continue;
        };
        out.push(E12Row {
            variant: name.to_string(),
            // The emitted table reports rates, not raw counts; units round-
            // trip through makespan × throughput, which is exact enough for
            // a ceiling with headroom.
            wire_per_unit: w / (m * ups).max(1.0),
            encode_s: e,
            copied_per_unit: c,
        });
    }
    out
}

/// Every E12 data-plane row of a whole document (used on the baseline side
/// to learn the per-variant ceilings).
fn e12_document_rows(doc: &Json) -> Vec<E12Row> {
    doc.get("experiments")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter(|e| e.get("type").and_then(Json::as_str) == Some("table"))
        .filter(|e| {
            e.get("title")
                .and_then(Json::as_str)
                .and_then(title_id)
                .as_deref()
                == Some("E12")
        })
        .flat_map(e12_data_plane_rows)
        .collect()
}

/// Validate a fresh results document and, when a baseline is supplied, gate
/// the performance trajectory against it.  See the module docs for the
/// exact checks; returns a human-readable summary on success.
pub fn check_results(doc: &Json, baseline: Option<&Json>) -> Result<GateSummary, String> {
    let entries = doc
        .get("experiments")
        .and_then(Json::as_arr)
        .ok_or("results document has no 'experiments' array")?;
    if entries.is_empty() {
        return Err("no experiments recorded".into());
    }
    let mut ids = BTreeSet::new();
    let mut failures = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        match entry.get("type").and_then(Json::as_str) {
            Some("table") | Some("series") => {
                let title = entry
                    .get("title")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("experiment {i} has no title"))?;
                ids.extend(title_id(title));
            }
            Some("failed") => {
                let name = entry
                    .get("experiment")
                    .and_then(Json::as_str)
                    .unwrap_or("<unknown>");
                let error = entry.get("error").and_then(Json::as_str).unwrap_or("");
                failures.push(format!("{name}: {error}"));
                ids.insert(name.to_string());
            }
            other => return Err(format!("experiment {i} has bad type {other:?}")),
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} experiment(s) recorded structured failures:\n  {}",
            failures.len(),
            failures.join("\n  ")
        ));
    }
    // The qualitative trajectory: the rows these checks read are asserted
    // strictly by the in-tree experiment tests; the gate re-checks the
    // committed story with generous tolerance on every CI run.
    for required in ["E10", "E11", "E14", "E16", "E17"] {
        if !ids.contains(required) {
            return Err(format!("required experiment {required} is missing"));
        }
    }
    // E12's learned data-plane ceilings come from the committed baseline
    // (empty when the baseline predates the columns).
    let e12_base = baseline.map(e12_document_rows).unwrap_or_default();
    for entry in entries {
        let Some(title) = entry.get("title").and_then(Json::as_str) else {
            continue;
        };
        match title_id(title).as_deref() {
            Some("E10") if entry.get("type").and_then(Json::as_str) == Some("table") => {
                let speedup = table_column(entry, "adaptive_speedup")
                    .ok_or("E10 table lost its adaptive_speedup column")?;
                let backend =
                    table_column(entry, "backend").ok_or("E10 table lost its backend column")?;
                for row in entry.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
                    let cells = row.as_arr().unwrap_or(&[]);
                    let v = cells
                        .get(speedup)
                        .and_then(Json::as_f64)
                        .ok_or("E10 speedup cell is not numeric")?;
                    if v < E10_MIN_SPEEDUP {
                        let b = cells.get(backend).and_then(Json::as_str).unwrap_or("?");
                        return Err(format!(
                            "E10 regression: adaptive speedup {v:.2} on the {b} backend \
                             fell below the {E10_MIN_SPEEDUP} floor"
                        ));
                    }
                }
            }
            Some("E11") if entry.get("type").and_then(Json::as_str) == Some("table") => {
                let variant =
                    table_column(entry, "variant").ok_or("E11 table lost its variant column")?;
                let demotions = table_column(entry, "demotions")
                    .ok_or("E11 table lost its demotions column")?;
                let mut saw_adaptive = false;
                for row in entry.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
                    let cells = row.as_arr().unwrap_or(&[]);
                    if cells.get(variant).and_then(Json::as_str) == Some("full-adaptive") {
                        saw_adaptive = true;
                        let d = cells
                            .get(demotions)
                            .and_then(Json::as_f64)
                            .ok_or("E11 demotions cell is not numeric")?;
                        if d < 1.0 {
                            return Err(format!(
                                "E11 regression: the engine-backed variant no longer demotes \
                                 the slowed worker ({d:.0} demotions recorded, at least 1 \
                                 required)"
                            ));
                        }
                    }
                }
                if !saw_adaptive {
                    return Err("E11 table lost its full-adaptive row".into());
                }
            }
            Some("E14") if entry.get("type").and_then(Json::as_str) == Some("table") => {
                let variant =
                    table_column(entry, "variant").ok_or("E14 table lost its variant column")?;
                let speedup = table_column(entry, "job_speedup")
                    .ok_or("E14 table lost its job_speedup column")?;
                let mut saw_service = false;
                for row in entry.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
                    let cells = row.as_arr().unwrap_or(&[]);
                    if cells.get(variant).and_then(Json::as_str) == Some("service") {
                        saw_service = true;
                        let v = cells
                            .get(speedup)
                            .and_then(Json::as_f64)
                            .ok_or("E14 job_speedup cell is not numeric")?;
                        if v < E14_MIN_JOB_SPEEDUP {
                            return Err(format!(
                                "E14 regression: the resident service's job throughput is \
                                 {v:.2}x the per-job spin-up baseline, below the \
                                 {E14_MIN_JOB_SPEEDUP} floor"
                            ));
                        }
                    }
                }
                if !saw_service {
                    return Err("E14 table lost its service row".into());
                }
            }
            Some("E16") if entry.get("type").and_then(Json::as_str) == Some("table") => {
                let variant =
                    table_column(entry, "variant").ok_or("E16 table lost its variant column")?;
                let speedup = table_column(entry, "steal_speedup")
                    .ok_or("E16 table lost its steal_speedup column")?;
                let mut saw_stealing = false;
                for row in entry.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
                    let cells = row.as_arr().unwrap_or(&[]);
                    if cells.get(variant).and_then(Json::as_str) == Some("work-stealing") {
                        saw_stealing = true;
                        let v = cells
                            .get(speedup)
                            .and_then(Json::as_f64)
                            .ok_or("E16 steal_speedup cell is not numeric")?;
                        if v < E16_MIN_STEAL_SPEEDUP {
                            return Err(format!(
                                "E16 regression: work stealing is {v:.2}x the demand-driven \
                                 baseline on the asymmetric farm, below the \
                                 {E16_MIN_STEAL_SPEEDUP} floor"
                            ));
                        }
                    }
                }
                if !saw_stealing {
                    return Err("E16 table lost its work-stealing row".into());
                }
            }
            Some("E17") if entry.get("type").and_then(Json::as_str) == Some("table") => {
                let variant =
                    table_column(entry, "variant").ok_or("E17 table lost its variant column")?;
                let speedup = table_column(entry, "spec_tail_speedup")
                    .ok_or("E17 table lost its spec_tail_speedup column")?;
                let mut saw_speculation = false;
                for row in entry.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
                    let cells = row.as_arr().unwrap_or(&[]);
                    if cells.get(variant).and_then(Json::as_str) == Some("speculation") {
                        saw_speculation = true;
                        let v = cells
                            .get(speedup)
                            .and_then(Json::as_f64)
                            .ok_or("E17 spec_tail_speedup cell is not numeric")?;
                        if v < E17_MIN_SPEC_TAIL_SPEEDUP {
                            return Err(format!(
                                "E17 regression: tail speculation is {v:.2}x the \
                                 no-speculation baseline on the straggler farm, below \
                                 the {E17_MIN_SPEC_TAIL_SPEEDUP} floor"
                            ));
                        }
                    }
                }
                if !saw_speculation {
                    return Err("E17 table lost its speculation row".into());
                }
            }
            Some("E12") if entry.get("type").and_then(Json::as_str) == Some("table") => {
                for row in e12_data_plane_rows(entry) {
                    if row.encode_s > E12_MAX_ENCODE_SECONDS {
                        return Err(format!(
                            "E12 regression: master encode time {:.6}s on the {} row \
                             exceeds the {E12_MAX_ENCODE_SECONDS}s ceiling",
                            row.encode_s, row.variant
                        ));
                    }
                    if row.copied_per_unit > E12_MAX_BYTES_COPIED_PER_UNIT {
                        return Err(format!(
                            "E12 regression: {:.1} payload bytes copied per unit on the \
                             {} row — the pipe transport must stay zero-copy",
                            row.copied_per_unit, row.variant
                        ));
                    }
                    for base in e12_base.iter().filter(|b| b.variant == row.variant) {
                        let wire_ceiling =
                            base.wire_per_unit * E12_WIRE_HEADROOM + E12_WIRE_SLACK_BYTES_PER_UNIT;
                        if row.wire_per_unit > wire_ceiling {
                            return Err(format!(
                                "E12 regression: {:.1} wire bytes per unit on the {} row \
                                 exceeds the learned ceiling {:.1} (baseline {:.1} × \
                                 {E12_WIRE_HEADROOM} + {E12_WIRE_SLACK_BYTES_PER_UNIT})",
                                row.wire_per_unit, row.variant, wire_ceiling, base.wire_per_unit
                            ));
                        }
                        let encode_ceiling =
                            base.encode_s * E12_ENCODE_HEADROOM + E12_ENCODE_SLACK_SECONDS;
                        if row.encode_s > encode_ceiling {
                            return Err(format!(
                                "E12 regression: master encode time {:.6}s on the {} row \
                                 exceeds the learned ceiling {:.6}s (baseline {:.6}s × \
                                 {E12_ENCODE_HEADROOM} + {E12_ENCODE_SLACK_SECONDS}s)",
                                row.encode_s, row.variant, encode_ceiling, base.encode_s
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // Trajectory vs the committed baseline: the experiment family may only
    // grow, and nothing present in the baseline may disappear.
    if let Some(base) = baseline {
        let base_summary = check_ids_only(base)?;
        if entries.len() < base_summary.experiments {
            return Err(format!(
                "experiment count shrank: {} recorded, baseline has {}",
                entries.len(),
                base_summary.experiments
            ));
        }
        for id in &base_summary.ids {
            if !ids.contains(id) {
                return Err(format!("experiment {id} present in baseline is missing"));
            }
        }
    }
    Ok(GateSummary {
        experiments: entries.len(),
        ids,
    })
}

/// Structural pass over a baseline document: ids and entry count only (the
/// baseline's own perf numbers are historical — they are not re-judged).
fn check_ids_only(doc: &Json) -> Result<GateSummary, String> {
    let entries = doc
        .get("experiments")
        .and_then(Json::as_arr)
        .ok_or("baseline document has no 'experiments' array")?;
    let mut ids = BTreeSet::new();
    for entry in entries {
        if let Some(title) = entry.get("title").and_then(Json::as_str) {
            ids.extend(title_id(title));
        } else if let Some(name) = entry.get("experiment").and_then(Json::as_str) {
            ids.insert(name.to_string());
        }
    }
    Ok(GateSummary {
        experiments: entries.len(),
        ids,
    })
}

/// File-level driver for `run_all --check RESULTS [--baseline BASE]`.
pub fn check_files(results_path: &str, baseline_path: Option<&str>) -> Result<String, String> {
    let text = std::fs::read_to_string(results_path)
        .map_err(|e| format!("could not read {results_path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{results_path}: {e}"))?;
    let baseline = match baseline_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("could not read baseline {path}: {e}"))?;
            Some(parse_json(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let summary = check_results(&doc, baseline.as_ref())?;
    Ok(format!(
        "{}: {} experiments OK ({}){}",
        results_path,
        summary.experiments,
        summary.ids.iter().cloned().collect::<Vec<_>>().join(", "),
        match baseline_path {
            Some(b) => format!("; trajectory gated against {b}"),
            None => String::new(),
        }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{table_json, Table};

    fn e10_table(speedups: &[(&str, f64)]) -> String {
        let mut t = Table::new(
            "E10: scheduling under node churn (8 nodes)",
            &[
                "backend",
                "p_outage",
                "adaptive_cost",
                "static_cost",
                "adaptive_speedup",
                "requeued",
                "retried",
                "nodes_lost",
            ],
        );
        for (backend, s) in speedups {
            t.push_row(vec![
                backend.to_string(),
                "0.50".into(),
                "10".into(),
                "12".into(),
                format!("{s:.2}"),
                "1".into(),
                "1".into(),
                "1".into(),
            ]);
        }
        table_json(&t)
    }

    fn e11_table(demotions: usize) -> String {
        let mut t = Table::new(
            "E11: thread farm under a 25x worker-0 slowdown",
            &["variant", "makespan_s", "demotions"],
        );
        t.push_row(vec!["demand-driven".into(), "1.0".into(), "0".into()]);
        t.push_row(vec![
            "full-adaptive".into(),
            "0.8".into(),
            demotions.to_string(),
        ]);
        table_json(&t)
    }

    fn e14_table(speedup: f64) -> String {
        let mut t = Table::new(
            "E14: resident service vs per-job spin-up (12 jobs, 4 workers)",
            &["variant", "jobs_per_s", "job_speedup"],
        );
        t.push_row(vec!["spin-up".into(), "100.0".into(), "1.000".into()]);
        t.push_row(vec![
            "service".into(),
            format!("{:.1}", 100.0 * speedup),
            format!("{speedup:.3}"),
        ]);
        table_json(&t)
    }

    /// An E12 table with the data-plane columns; each row is
    /// `(variant, units, wire_bytes, encode_s, bytes_copied_per_unit)` with
    /// a 1-second makespan so `units_per_s == units`.
    fn e12_table(rows: &[(&str, f64, f64, f64, f64)]) -> String {
        let mut t = Table::new(
            "E12: thread vs process backends (6 matmul bands, n=96)",
            &[
                "variant",
                "makespan_s",
                "units_per_s",
                "wire_bytes",
                "wire_write_s",
                "wire_fraction",
                "encode_s",
                "bytes_copied_per_unit",
            ],
        );
        for (variant, units, wire, encode, copied) in rows {
            t.push_row(vec![
                variant.to_string(),
                "1.000000".into(),
                format!("{units:.1}"),
                format!("{wire:.0}"),
                "0.001".into(),
                "0.001".into(),
                format!("{encode:.6}"),
                format!("{copied:.1}"),
            ]);
        }
        table_json(&t)
    }

    fn e16_table(speedup: f64) -> String {
        let mut t = Table::new(
            "E16: work stealing on an asymmetric farm (240 irregular units, worker 0 slowed 8x)",
            &["variant", "cost", "steals_completed", "steal_speedup"],
        );
        t.push_row(vec![
            "demand-driven".into(),
            "4800".into(),
            "0".into(),
            "1.000".into(),
        ]);
        t.push_row(vec![
            "work-stealing".into(),
            format!("{:.0}", 4800.0 / speedup.max(1e-9)),
            "6".into(),
            format!("{speedup:.3}"),
        ]);
        table_json(&t)
    }

    fn e17_table(speedup: f64) -> String {
        let mut t = Table::new(
            "E17: tail speculation on the Time-Warp transaction farm \
             (24 partitions, worker 0 slowed 25x)",
            &["variant", "cost", "speculation_wins", "spec_tail_speedup"],
        );
        t.push_row(vec![
            "no-speculation".into(),
            "1200".into(),
            "0".into(),
            "1.000".into(),
        ]);
        t.push_row(vec![
            "speculation".into(),
            format!("{:.0}", 1200.0 / speedup.max(1e-9)),
            "3".into(),
            format!("{speedup:.3}"),
        ]);
        table_json(&t)
    }

    fn doc(parts: &[String]) -> Json {
        parse_json(&format!("{{\"experiments\":[{}]}}", parts.join(","))).unwrap()
    }

    fn healthy() -> Json {
        doc(&[
            e10_table(&[("sim", 1.4), ("threads", 1.2)]),
            e11_table(2),
            e14_table(1.3),
            e16_table(1.4),
            e17_table(1.4),
        ])
    }

    #[test]
    fn parser_handles_the_emitted_subset_and_more() {
        let v = parse_json(r#"{"a":[1,-2.5e3,"x\n\"yA"],"b":null,"c":true}"#).unwrap();
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\n\"yA"));
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("").is_err());
        // Depth bomb is rejected, not a stack overflow.
        let bomb = "[".repeat(200) + &"]".repeat(200);
        assert!(parse_json(&bomb).is_err());
    }

    #[test]
    fn healthy_results_pass_and_report_ids() {
        let summary = check_results(&healthy(), None).unwrap();
        assert_eq!(summary.experiments, 5);
        assert!(summary.ids.contains("E10") && summary.ids.contains("E11"));
        assert!(summary.ids.contains("E14") && summary.ids.contains("E16"));
        assert!(summary.ids.contains("E17"));
    }

    #[test]
    fn e10_speedup_regressions_fail_the_gate() {
        let bad = doc(&[
            e10_table(&[("sim", 1.4), ("threads", 0.7)]),
            e11_table(1),
            e14_table(1.2),
            e16_table(1.3),
            e17_table(1.3),
        ]);
        let err = check_results(&bad, None).unwrap_err();
        assert!(err.contains("E10 regression"), "{err}");
        assert!(err.contains("threads"), "{err}");
    }

    #[test]
    fn e11_losing_its_demotion_fails_the_gate() {
        let bad = doc(&[
            e10_table(&[("sim", 1.3)]),
            e11_table(0),
            e14_table(1.2),
            e16_table(1.3),
            e17_table(1.3),
        ]);
        let err = check_results(&bad, None).unwrap_err();
        assert!(err.contains("E11 regression"), "{err}");
        assert!(
            err.contains("0 demotions"),
            "the failure must print the offending metric value: {err}"
        );
    }

    #[test]
    fn e14_losing_its_throughput_win_fails_the_gate() {
        let bad = doc(&[
            e10_table(&[("sim", 1.3)]),
            e11_table(1),
            e14_table(0.5),
            e16_table(1.3),
            e17_table(1.3),
        ]);
        let err = check_results(&bad, None).unwrap_err();
        assert!(err.contains("E14 regression"), "{err}");
        assert!(
            err.contains("0.50"),
            "the failure must print the offending metric value: {err}"
        );
    }

    #[test]
    fn e16_losing_its_steal_win_fails_the_gate() {
        let bad = doc(&[
            e10_table(&[("sim", 1.3)]),
            e11_table(1),
            e14_table(1.2),
            e16_table(0.8),
            e17_table(1.3),
        ]);
        let err = check_results(&bad, None).unwrap_err();
        assert!(err.contains("E16 regression"), "{err}");
        assert!(
            err.contains("0.80"),
            "the failure must print the offending speedup: {err}"
        );
        // A table that dropped the work-stealing row entirely is also red.
        let mut t = Table::new(
            "E16: work stealing on an asymmetric farm",
            &["variant", "steal_speedup"],
        );
        t.push_row(vec!["demand-driven".into(), "1.000".into()]);
        let rowless = doc(&[
            e10_table(&[("sim", 1.3)]),
            e11_table(1),
            e14_table(1.2),
            e17_table(1.3),
            table_json(&t),
        ]);
        let err = check_results(&rowless, None).unwrap_err();
        assert!(err.contains("work-stealing row"), "{err}");
    }

    #[test]
    fn e17_losing_its_speculation_win_fails_the_gate() {
        let bad = doc(&[
            e10_table(&[("sim", 1.3)]),
            e11_table(1),
            e14_table(1.2),
            e16_table(1.3),
            e17_table(0.7),
        ]);
        let err = check_results(&bad, None).unwrap_err();
        assert!(err.contains("E17 regression"), "{err}");
        assert!(
            err.contains("0.70"),
            "the failure must print the offending speedup: {err}"
        );
        // A table that dropped the speculation row entirely is also red.
        let mut t = Table::new(
            "E17: tail speculation on the Time-Warp transaction farm",
            &["variant", "spec_tail_speedup"],
        );
        t.push_row(vec!["no-speculation".into(), "1.000".into()]);
        let rowless = doc(&[
            e10_table(&[("sim", 1.3)]),
            e11_table(1),
            e14_table(1.2),
            e16_table(1.3),
            table_json(&t),
        ]);
        let err = check_results(&rowless, None).unwrap_err();
        assert!(err.contains("speculation row"), "{err}");
    }

    #[test]
    fn e12_data_plane_ceilings_pass_healthy_rows_and_old_format_tables() {
        // Healthy: zero copies, microsecond encode, wire volume within the
        // learned headroom of an identical baseline.
        let rows = &[
            ("threads", 6.0, 0.0, 0.0, 0.0),
            ("proc-spin", 6.0, 2000.0, 0.0001, 0.0),
            ("proc-matmul", 6.0, 2600.0, 0.0002, 0.0),
        ];
        let fresh = doc(&[
            e10_table(&[("sim", 1.4)]),
            e11_table(1),
            e14_table(1.2),
            e16_table(1.3),
            e17_table(1.3),
            e12_table(rows),
        ]);
        check_results(&fresh, Some(&fresh)).unwrap();
        // A pre-data-plane E12 table (no encode_s/bytes_copied_per_unit
        // columns) carries no ceilings and still passes, even against a
        // baseline that has them.
        let old = doc(&[
            e10_table(&[("sim", 1.4)]),
            e11_table(1),
            e14_table(1.2),
            e16_table(1.3),
            e17_table(1.3),
            "{\"type\":\"table\",\"title\":\"E12: proc backend\",\
             \"headers\":[\"variant\",\"wire_bytes\"],\
             \"rows\":[[\"proc-spin\",\"2000\"]]}"
                .to_string(),
        ]);
        check_results(&old, Some(&fresh)).unwrap();
    }

    #[test]
    fn e12_encode_time_blowup_fails_the_gate() {
        let bad = doc(&[
            e10_table(&[("sim", 1.4)]),
            e11_table(1),
            e14_table(1.2),
            e16_table(1.3),
            e17_table(1.3),
            e12_table(&[("proc-spin", 6.0, 2000.0, 0.40, 0.0)]),
        ]);
        let err = check_results(&bad, None).unwrap_err();
        assert!(err.contains("E12 regression"), "{err}");
        assert!(
            err.contains("0.400000"),
            "the failure must print the offending encode time: {err}"
        );
    }

    #[test]
    fn e12_copied_payload_bytes_fail_the_gate() {
        let bad = doc(&[
            e10_table(&[("sim", 1.4)]),
            e11_table(1),
            e14_table(1.2),
            e16_table(1.3),
            e17_table(1.3),
            e12_table(&[("proc-matmul", 6.0, 2600.0, 0.0002, 384.5)]),
        ]);
        let err = check_results(&bad, None).unwrap_err();
        assert!(err.contains("E12 regression"), "{err}");
        assert!(
            err.contains("384.5") && err.contains("zero-copy"),
            "the failure must print the copied volume: {err}"
        );
    }

    #[test]
    fn e12_wire_volume_above_the_learned_ceiling_fails_the_gate() {
        let baseline = doc(&[
            e10_table(&[("sim", 1.4)]),
            e11_table(1),
            e14_table(1.2),
            e16_table(1.3),
            e17_table(1.3),
            e12_table(&[("proc-spin", 6.0, 1200.0, 0.0001, 0.0)]),
        ]);
        // Baseline: 200 bytes/unit → ceiling 200 × 1.5 + 256 = 556.  Fresh
        // spends 1000 bytes/unit: a frame got fatter or chattier.
        let fat = doc(&[
            e10_table(&[("sim", 1.4)]),
            e11_table(1),
            e14_table(1.2),
            e16_table(1.3),
            e17_table(1.3),
            e12_table(&[("proc-spin", 6.0, 6000.0, 0.0001, 0.0)]),
        ]);
        let err = check_results(&fat, Some(&baseline)).unwrap_err();
        assert!(err.contains("E12 regression"), "{err}");
        assert!(
            err.contains("1000.0") && err.contains("learned ceiling"),
            "the failure must print fresh volume and learned ceiling: {err}"
        );
        // The same fresh doc passes without a baseline (nothing learned) and
        // against a baseline whose E12 already spent that much.
        check_results(&fat, None).unwrap();
        check_results(&fat, Some(&fat)).unwrap();
    }

    #[test]
    fn structured_failures_fail_the_gate_with_their_message() {
        let failed = doc(&[
            e10_table(&[("sim", 1.3)]),
            e11_table(1),
            e14_table(1.2),
            crate::report::failed_json("E12", "worker binary missing"),
        ]);
        let err = check_results(&failed, None).unwrap_err();
        assert!(err.contains("E12"), "{err}");
        assert!(err.contains("worker binary missing"), "{err}");
    }

    #[test]
    fn missing_required_experiments_fail_the_gate() {
        let only_e11 = doc(&[e11_table(1)]);
        let err = check_results(&only_e11, None).unwrap_err();
        assert!(err.contains("E10"), "{err}");
    }

    #[test]
    fn baselines_gate_shrinkage_and_missing_ids() {
        let fresh = healthy();
        // Same doc as its own baseline: passes.
        check_results(&fresh, Some(&fresh)).unwrap();
        // A baseline with an extra experiment the fresh run lost: fails.
        let bigger = doc(&[
            e10_table(&[("sim", 1.4)]),
            e11_table(1),
            e14_table(1.2),
            "{\"type\":\"table\",\"title\":\"E12: proc backend\",\"headers\":[],\"rows\":[]}"
                .to_string(),
        ]);
        let err = check_results(&fresh, Some(&bigger)).unwrap_err();
        assert!(err.contains("E12") || err.contains("shrank"), "{err}");
    }

    #[test]
    fn check_files_reports_io_and_parse_errors() {
        assert!(check_files("/nonexistent/results.json", None).is_err());
        let dir = std::env::temp_dir().join(format!("grasp-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "not json").unwrap();
        assert!(check_files(bad.to_str().unwrap(), None).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
