//! Standard experiment scenarios.
//!
//! Every experiment builds its grid through one of these constructors so that
//! the same external-load regimes are used consistently across tables and
//! figures, and so that seeds are the only source of variation between
//! repetitions.

use grasp_core::TaskSpec;
use gridsim::{
    BurstyLoad, ConstantLoad, FaultKind, FaultPlan, Grid, GridBuilder, LoadModel, NodeId,
    RandomWalkLoad, SpikeLoad, TopologyBuilder,
};
use std::sync::Arc;

/// Seed bundle used to derive every per-node seed of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSeed(pub u64);

impl Default for ScenarioSeed {
    fn default() -> Self {
        ScenarioSeed(2007)
    }
}

impl ScenarioSeed {
    /// Derive a per-node seed.
    pub fn for_node(&self, node_index: usize) -> u64 {
        self.0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(node_index as u64)
    }
}

/// A heterogeneous cluster (speed ratio ≈ 1–8×) where half the nodes carry a
/// constant external load — the scenario used by the calibration-quality
/// experiment (E1).
pub fn loaded_heterogeneous_grid(nodes: usize, seed: ScenarioSeed) -> Grid {
    let topo = TopologyBuilder::heterogeneous_cluster(nodes, 10.0, 80.0, seed.0);
    let node_ids = topo.node_ids();
    let mut builder = GridBuilder::new(topo);
    for &n in &node_ids {
        let load = if n.index() % 2 == 1 { 0.5 } else { 0.05 };
        builder = builder.node_load(n, ConstantLoad::new(load));
    }
    builder.build()
}

/// A heterogeneous cluster where half the nodes carry a *transient* load that
/// is present while calibration samples run (the first `transient_until`
/// seconds) and vanishes afterwards — the situation in which time-only
/// calibration misjudges nodes and statistical calibration should not
/// (experiment E1).
pub fn transient_load_grid(nodes: usize, transient_until: f64, seed: ScenarioSeed) -> Grid {
    let topo = TopologyBuilder::heterogeneous_cluster(nodes, 10.0, 80.0, seed.0);
    let node_ids = topo.node_ids();
    let mut builder = GridBuilder::new(topo).quantum(0.25);
    for &n in &node_ids {
        if n.index() % 2 == 1 {
            builder = builder.node_load(
                n,
                SpikeLoad::new(
                    0.02,
                    0.6,
                    gridsim::SimTime::ZERO,
                    gridsim::SimTime::new(transient_until),
                ),
            );
        } else {
            builder = builder.node_load(n, ConstantLoad::new(0.02));
        }
    }
    builder.build()
}

/// A non-dedicated cluster in the style of a shared departmental grid: nodes
/// have identical hardware, but their *external* load differs persistently —
/// roughly 60 % are mostly idle, 25 % carry moderate competing work and 15 %
/// are heavily used — and every node additionally sees slowly drifting
/// random-walk load and occasional bursts.  This is the regime of the farm
/// experiments (E2, E4, E6): a rigid equal share per node is wrong, and the
/// right share changes over time.
pub fn bursty_grid(nodes: usize, base_speed: f64, seed: ScenarioSeed) -> Grid {
    let topo = TopologyBuilder::uniform_cluster(nodes, base_speed);
    GridBuilder::new(topo)
        .node_loads_with(|id| {
            let s = seed.for_node(id.index());
            // Persistent per-node regime: mostly idle / moderate / heavy.
            let mean = match s % 10 {
                0..=5 => 0.05,
                6..=8 => 0.40,
                _ => 0.75,
            };
            let walk = RandomWalkLoad::new(mean, 0.03, 5.0, 2_000.0, s ^ 0xABCD);
            let bursts = BurstyLoad::new(0.0, 0.5, 150.0, 30.0, 2_000.0, s);
            Arc::new(
                gridsim::CompositeLoad::new()
                    .with(Box::new(walk))
                    .with(Box::new(bursts)),
            ) as Arc<dyn LoadModel>
        })
        .quantum(0.25)
        .build()
}

/// A quiet cluster in which a subset of nodes suffers a sustained load spike
/// during `[spike_start, spike_end)` — the adaptation-response scenario
/// (E3, E7).
pub fn spike_grid(
    nodes: usize,
    base_speed: f64,
    loaded_fraction: f64,
    spike_start: f64,
    spike_end: f64,
) -> Grid {
    let topo = TopologyBuilder::uniform_cluster(nodes, base_speed);
    let node_ids = topo.node_ids();
    let loaded = ((nodes as f64) * loaded_fraction.clamp(0.0, 1.0)).round() as usize;
    let mut builder = GridBuilder::new(topo).quantum(0.25);
    for &n in &node_ids {
        if n.index() < loaded {
            builder = builder.node_load(
                n,
                SpikeLoad::new(
                    0.02,
                    0.92,
                    gridsim::SimTime::new(spike_start),
                    gridsim::SimTime::new(spike_end),
                ),
            );
        } else {
            builder = builder.node_load(n, ConstantLoad::new(0.02));
        }
    }
    builder.build()
}

/// A uniform cluster under **node churn**: every node except node 0 (kept
/// alive so the master and the job always survive) suffers a random
/// revocation with probability `p_outage`, starting uniformly within
/// `[0, horizon_s)` and lasting `mean_outage_s` on average — the ad-hoc-grid
/// regime of the churn experiment (E10).  One churned node in four (rounded
/// down, highest indices first) is revoked **permanently** — on a real
/// ad-hoc grid a reclaimed workstation often never returns — so runs also
/// exercise the lost-chunk requeue path, not just wait-out-the-outage
/// stalls.  Deterministic per seed.
pub fn churn_grid(
    nodes: usize,
    base_speed: f64,
    p_outage: f64,
    mean_outage_s: f64,
    horizon_s: f64,
    seed: ScenarioSeed,
) -> Grid {
    let topo = TopologyBuilder::uniform_cluster(nodes, base_speed);
    let churn_targets: Vec<NodeId> = topo
        .node_ids()
        .into_iter()
        .filter(|n| n.index() != 0)
        .collect();
    let faults = FaultPlan::random(&churn_targets, p_outage, horizon_s, mean_outage_s, seed.0);
    // Strip the recovery of the top quarter of churned nodes: their
    // revocation becomes permanent.
    let mut churned: Vec<NodeId> = faults
        .events()
        .iter()
        .map(|e| e.node)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    churned.reverse();
    let quarter = churned.len() / 4;
    let permanent: std::collections::BTreeSet<NodeId> = churned.into_iter().take(quarter).collect();
    let events = faults
        .events()
        .iter()
        .filter(|e| !(permanent.contains(&e.node) && e.kind == FaultKind::Recover))
        .copied()
        .collect();
    let faults = FaultPlan::from_events(events);
    GridBuilder::new(topo).faults(faults).quantum(0.25).build()
}

/// The irregular farm workload of the churn experiment: per-task work ramps
/// from `work` up to `4 × work` across the list, so equal-*count* static
/// blocks are unequal-*work* blocks and only demand-driven policies balance.
pub fn irregular_farm_tasks(n: usize, work: f64) -> Vec<TaskSpec> {
    (0..n)
        .map(|i| {
            let ramp = 1.0 + 3.0 * i as f64 / n.max(1) as f64;
            TaskSpec::new(i, work * ramp, 16 * 1024, 16 * 1024)
        })
        .collect()
}

/// The standard farm workload used when an experiment does not sweep the
/// workload itself: `n` uniform tasks of `work` units with 32 KiB in/out.
pub fn standard_farm_tasks(n: usize, work: f64) -> Vec<TaskSpec> {
    TaskSpec::uniform(n, work, 32 * 1024, 32 * 1024)
}

/// The standard VGA imaging job used by the composed-skeleton experiment
/// (E9): `frames` synthetic 640×480 frames with the fixed evaluation seed.
pub fn standard_imaging_job(frames: usize) -> grasp_workloads::imaging::ImagePipeline {
    grasp_workloads::imaging::ImagePipeline {
        width: 640,
        height: 480,
        frames,
        seed: 11,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::{NodeId, SimTime};

    #[test]
    fn scenario_seeds_are_distinct_per_node() {
        let s = ScenarioSeed(9);
        assert_ne!(s.for_node(0), s.for_node(1));
    }

    #[test]
    fn loaded_heterogeneous_grid_alternates_load() {
        let g = loaded_heterogeneous_grid(8, ScenarioSeed::default());
        assert_eq!(g.node_ids().len(), 8);
        assert!(g.cpu_load(NodeId(1), SimTime::ZERO) > g.cpu_load(NodeId(0), SimTime::ZERO));
    }

    #[test]
    fn bursty_grid_is_deterministic_per_seed() {
        let a = bursty_grid(4, 40.0, ScenarioSeed(1));
        let b = bursty_grid(4, 40.0, ScenarioSeed(1));
        let c = bursty_grid(4, 40.0, ScenarioSeed(2));
        let t = SimTime::new(123.0);
        assert_eq!(a.cpu_load(NodeId(2), t), b.cpu_load(NodeId(2), t));
        let differs = (0..4).any(|i| a.cpu_load(NodeId(i), t) != c.cpu_load(NodeId(i), t));
        assert!(differs);
    }

    #[test]
    fn spike_grid_loads_only_the_requested_fraction() {
        let g = spike_grid(10, 40.0, 0.3, 10.0, 100.0);
        let during = SimTime::new(50.0);
        let loaded: usize = (0..10)
            .filter(|&i| g.cpu_load(NodeId(i), during) > 0.5)
            .count();
        assert_eq!(loaded, 3);
        // Before the spike everything is quiet.
        assert!(g.cpu_load(NodeId(0), SimTime::ZERO) < 0.1);
    }

    #[test]
    fn churn_grid_is_deterministic_and_spares_node_zero() {
        let a = churn_grid(8, 40.0, 0.9, 15.0, 60.0, ScenarioSeed(3));
        let b = churn_grid(8, 40.0, 0.9, 15.0, 60.0, ScenarioSeed(3));
        assert_eq!(a.faults().events(), b.faults().events());
        assert!(!a.faults().is_empty(), "p=0.9 over 7 nodes must churn");
        assert!(a.faults().events().iter().all(|e| e.node.index() != 0));
        // Node 0 is up at every event time.
        for e in a.faults().events() {
            assert!(a.is_up(NodeId(0), e.time));
        }
    }

    #[test]
    fn irregular_tasks_ramp_in_work() {
        let tasks = irregular_farm_tasks(10, 10.0);
        assert_eq!(tasks.len(), 10);
        assert!((tasks[0].work - 10.0).abs() < 1e-9);
        assert!(tasks.windows(2).all(|w| w[1].work > w[0].work));
        assert!(tasks[9].work < 40.0 && tasks[9].work > 35.0);
    }

    #[test]
    fn standard_tasks_have_expected_shape() {
        let tasks = standard_farm_tasks(10, 25.0);
        assert_eq!(tasks.len(), 10);
        assert!(tasks
            .iter()
            .all(|t| t.work == 25.0 && t.input_bytes == 32 * 1024));
    }
}
