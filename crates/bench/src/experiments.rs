//! The experiments of DESIGN.md's index (E1–E17), as reusable functions.
//!
//! Each function runs one experiment at a caller-chosen scale and returns a
//! [`Table`] and/or [`Series`] ready to print.  The `exp_*` binaries call
//! them at "paper scale"; the unit tests call them at a reduced scale to keep
//! the suite fast while still asserting the qualitative shape of each result
//! (who wins, in which direction parameters move the outcome).

use crate::report::{Series, Table};
use crate::scenarios::{
    bursty_grid, churn_grid, irregular_farm_tasks, loaded_heterogeneous_grid, spike_grid,
    standard_farm_tasks, transient_load_grid, ScenarioSeed,
};
use grasp_core::calibration::Calibrator;
use grasp_core::prelude::*;
use grasp_exec::ThreadBackend;
use grasp_net::worker::{run_connection, WorkerOptions};
use grasp_net::{LoopbackNet, NetBackend};
use grasp_proc::ProcBackend;
use grasp_service::{GraspService, JobSpec, ServiceConfig};
use grasp_workloads::matmul::MatMulJob;
use grasp_workloads::{ServiceMixJob, TranSimJob};
use gridmon::{
    mean_absolute_error, AdaptiveForecaster, Ar1Forecaster, ExponentialSmoothing, Forecaster,
    LastValue, RunningMean, SlidingWindowMean, SlidingWindowMedian,
};
use gridsim::{Grid, LoadModel, NodeId, PeriodicLoad, RandomWalkLoad, SimTime, SpikeLoad};
use gridstats::spearman_rho;

/// E1 — calibration ranking quality (time-only vs univariate vs multivariate).
///
/// Half the nodes carry a *transient* load that is present only while the
/// calibration samples run; the ground truth the ranking is judged against is
/// the node's intrinsic (post-transient) speed.  Time-only calibration
/// penalises the transiently loaded nodes; statistical calibration should
/// discount the observed load and rank closer to the truth.
///
/// Reports, per calibration mode: Spearman correlation between the calibrated
/// ranking and the ground-truth ranking, precision of the selected top-half,
/// and the virtual time the calibration consumed.
pub fn e1_calibration_quality(nodes: usize, samples_per_node: usize, seed: ScenarioSeed) -> Table {
    let grid = transient_load_grid(nodes, 400.0, seed);
    let tasks = standard_farm_tasks(nodes * samples_per_node.max(1) * 2, 60.0);
    let mut table = Table::new(
        format!("E1: calibration ranking quality ({nodes} nodes, half transiently loaded)"),
        &[
            "mode",
            "spearman_rho",
            "top_half_precision",
            "calibration_s",
            "tasks_consumed",
        ],
    );
    // Ground truth: intrinsic node speed (what matters once the transient
    // external load has gone away).
    let truth: Vec<f64> = grid
        .node_ids()
        .iter()
        .map(|&n| grid.node(n).map(|s| s.base_speed).unwrap_or(0.0))
        .collect();
    let truth_rank = gridstats::argsort_descending(&truth);
    let top_half: std::collections::BTreeSet<usize> =
        truth_rank[..nodes / 2].iter().copied().collect();

    for mode in [
        CalibrationMode::TimeOnly,
        CalibrationMode::Univariate,
        CalibrationMode::Multivariate,
    ] {
        let cfg = CalibrationConfig {
            mode,
            samples_per_node,
            selection_fraction: 0.5,
            ..CalibrationConfig::default()
        };
        let calibrator = Calibrator::new(cfg);
        let mut registry = gridmon::MonitorRegistry::new(NodeId(0), 64);
        let report = calibrator
            .calibrate(
                &grid,
                &mut registry,
                &grid.node_ids(),
                &tasks,
                NodeId(0),
                SimTime::ZERO,
            )
            .expect("calibration must succeed on an all-up grid");
        // Spearman between adjusted time and 1/effective-speed.
        let adjusted: Vec<f64> = report.table.iter().map(|c| c.adjusted_time).collect();
        let inv_truth: Vec<f64> = truth.iter().map(|s| 1.0 / s.max(1e-9)).collect();
        let rho = spearman_rho(&adjusted, &inv_truth).unwrap_or(0.0);
        let hits = report
            .chosen
            .iter()
            .filter(|n| top_half.contains(&n.index()))
            .count();
        let precision = hits as f64 / report.chosen.len().max(1) as f64;
        table.push_row(vec![
            mode.name().to_string(),
            format!("{rho:.3}"),
            format!("{precision:.3}"),
            format!("{:.3}", report.duration.as_secs()),
            report.tasks_consumed.to_string(),
        ]);
    }
    table
}

/// One completion-time measurement for E2/E6.
fn farm_makespan(grid: &Grid, tasks: &[TaskSpec], config: GraspConfig) -> FarmOutcome {
    TaskFarm::new(config)
        .run(grid, tasks)
        .expect("farm experiment run failed")
}

/// E2 — adaptive farm vs static block vs self-scheduling under bursty load.
///
/// Returns the per-node-count completion times (table) and the speedup of
/// each policy relative to the single fastest node (series, figure style).
pub fn e2_farm_comparison(
    node_counts: &[usize],
    tasks_n: usize,
    seed: ScenarioSeed,
) -> (Table, Series) {
    let mut table = Table::new(
        format!("E2: task farm under bursty load ({tasks_n} tasks)"),
        &[
            "nodes",
            "adaptive_s",
            "static_s",
            "selfsched_s",
            "worksteal_s",
            "adaptive_speedup_vs_static",
        ],
    );
    let mut series = Series::new(
        "E2: completion time vs pool size",
        &[
            "nodes",
            "adaptive_s",
            "static_s",
            "selfsched_s",
            "worksteal_s",
        ],
    );
    for &n in node_counts {
        let tasks = standard_farm_tasks(tasks_n, 60.0);
        let grid = bursty_grid(n, 40.0, seed);
        let adaptive = farm_makespan(&grid, &tasks, GraspConfig::default());
        let grid = bursty_grid(n, 40.0, seed);
        let statics = farm_makespan(&grid, &tasks, GraspConfig::static_baseline());
        let grid = bursty_grid(n, 40.0, seed);
        let selfs = farm_makespan(&grid, &tasks, GraspConfig::self_scheduling_baseline());
        let grid = bursty_grid(n, 40.0, seed);
        // On the master-cursor sim farm the work-stealing policy degrades to
        // its calibration-weighted chunk formula (deques need real threads).
        let steals = farm_makespan(
            &grid,
            &tasks,
            GraspConfig {
                scheduler: SchedulePolicy::WorkStealing { min_chunk: 1 },
                ..GraspConfig::default()
            },
        );
        let a = adaptive.makespan.as_secs();
        let s = statics.makespan.as_secs();
        let d = selfs.makespan.as_secs();
        let w = steals.makespan.as_secs();
        table.push_row(vec![
            n.to_string(),
            format!("{a:.1}"),
            format!("{s:.1}"),
            format!("{d:.1}"),
            format!("{w:.1}"),
            format!("{:.2}", s / a.max(1e-9)),
        ]);
        series.push(vec![n as f64, a, s, d, w]);
    }
    (table, series)
}

/// E3 — adaptive pipeline vs rigid mapping with a mid-run load spike.
///
/// Returns per-interval throughput series for both variants plus a summary
/// table (makespan, steady-state throughput, remaps).
pub fn e3_pipeline_adaptation(items: usize) -> (Table, Series) {
    let stages = vec![
        StageSpec::new(0, 20.0, 256 * 1024, 512 * 1024),
        StageSpec::new(1, 40.0, 256 * 1024, 512 * 1024),
        StageSpec::new(2, 30.0, 256 * 1024, 512 * 1024),
        StageSpec::new(3, 10.0, 256 * 1024, 512 * 1024),
    ];
    let make_grid = || spike_grid(6, 40.0, 0.67, 25.0, 1e6);

    let adaptive = Pipeline::new(GraspConfig::default())
        .run(&make_grid(), &stages, items)
        .expect("adaptive pipeline run failed");
    let mut rigid_cfg = GraspConfig::default();
    rigid_cfg.execution.adaptive = false;
    let rigid = Pipeline::new(rigid_cfg)
        .run(&make_grid(), &stages, items)
        .expect("rigid pipeline run failed");

    let mut table = Table::new(
        format!("E3: image-style pipeline with a load spike ({items} items)"),
        &[
            "variant",
            "makespan_s",
            "steady_items_per_s",
            "stage_remaps",
        ],
    );
    table.push_row(vec![
        "adaptive".into(),
        format!("{:.1}", adaptive.makespan.as_secs()),
        format!("{:.3}", adaptive.steady_state_throughput()),
        adaptive.adaptation.stage_remaps().to_string(),
    ]);
    table.push_row(vec![
        "rigid".into(),
        format!("{:.1}", rigid.makespan.as_secs()),
        format!("{:.3}", rigid.steady_state_throughput()),
        rigid.adaptation.stage_remaps().to_string(),
    ]);

    let mut series = Series::new(
        "E3: pipeline throughput over time (items/s per interval)",
        &["t_s", "adaptive", "rigid"],
    );
    let a_rates = adaptive.timeline.rates();
    let r_rates = rigid.timeline.rates();
    let interval = adaptive.timeline.interval();
    for i in 0..a_rates.len().max(r_rates.len()) {
        series.push(vec![
            i as f64 * interval,
            a_rates.get(i).copied().unwrap_or(0.0),
            r_rates.get(i).copied().unwrap_or(0.0),
        ]);
    }
    (table, series)
}

/// E4 — sensitivity to the performance threshold Z.
///
/// Sweeps the threshold factor and reports recalibration count, demotions and
/// completion time on the bursty grid.
pub fn e4_threshold_sweep(
    factors: &[f64],
    nodes: usize,
    tasks_n: usize,
    seed: ScenarioSeed,
) -> (Table, Series) {
    let mut table = Table::new(
        "E4: threshold sensitivity (adaptive farm, bursty grid)",
        &["factor", "recalibrations", "demotions", "makespan_s"],
    );
    let mut series = Series::new(
        "E4: makespan and recalibrations vs threshold factor",
        &["factor", "makespan_s", "recalibrations"],
    );
    for &factor in factors {
        let grid = bursty_grid(nodes, 40.0, seed);
        let tasks = standard_farm_tasks(tasks_n, 60.0);
        let mut cfg = GraspConfig::default();
        cfg.execution.threshold = ThresholdPolicy::Factor { factor };
        let out = farm_makespan(&grid, &tasks, cfg);
        table.push_row(vec![
            format!("{factor:.2}"),
            out.adaptation.recalibrations().to_string(),
            out.adaptation.demotions().to_string(),
            format!("{:.1}", out.makespan.as_secs()),
        ]);
        series.push(vec![
            factor,
            out.makespan.as_secs(),
            out.adaptation.recalibrations() as f64,
        ]);
    }
    (table, series)
}

/// E5 — calibration overhead and its contribution to the job.
///
/// Sweeps the number of calibration samples per node and reports the
/// calibration duration, its fraction of the total makespan, and how many
/// job tasks the calibration itself completed.
pub fn e5_calibration_overhead(
    samples: &[usize],
    nodes: usize,
    tasks_n: usize,
    seed: ScenarioSeed,
) -> Table {
    let mut table = Table::new(
        "E5: calibration overhead vs sample size",
        &[
            "samples_per_node",
            "calibration_s",
            "calibration_fraction",
            "calib_tasks",
            "makespan_s",
        ],
    );
    for &s in samples {
        let grid = loaded_heterogeneous_grid(nodes, seed);
        let skeleton = Skeleton::farm(standard_farm_tasks(tasks_n, 60.0));
        let mut cfg = GraspConfig::default();
        cfg.calibration.samples_per_node = s;
        let report = Grasp::new(cfg)
            .run(&SimBackend::new(&grid), &skeleton)
            .expect("farm run failed");
        let calib_tasks = match &report.outcome.detail {
            OutcomeDetail::SimFarm(farm) => farm
                .task_outcomes
                .iter()
                .filter(|o| o.during_calibration)
                .count(),
            _ => 0,
        };
        table.push_row(vec![
            s.to_string(),
            format!("{:.2}", report.phases.calibration.as_secs()),
            format!("{:.3}", report.phases.calibration_fraction()),
            calib_tasks.to_string(),
            format!("{:.1}", report.outcome.makespan_s),
        ]);
    }
    table
}

/// E6 — scalability: adaptive vs static efficiency as the pool grows.
pub fn e6_scalability(node_counts: &[usize], tasks_n: usize, seed: ScenarioSeed) -> Series {
    let mut series = Series::new(
        "E6: efficiency vs pool size (bursty grid)",
        &["nodes", "adaptive_efficiency", "static_efficiency"],
    );
    for &n in node_counts {
        let tasks = standard_farm_tasks(tasks_n, 60.0);
        // Reference: one dedicated node of the same class.
        let reference = {
            let quiet = Grid::dedicated(gridsim::TopologyBuilder::uniform_cluster(1, 40.0));
            TaskFarm::sequential_reference(&quiet, NodeId(0), &tasks).unwrap_or(1.0)
        };
        let adaptive = farm_makespan(&bursty_grid(n, 40.0, seed), &tasks, GraspConfig::default());
        let statics = farm_makespan(
            &bursty_grid(n, 40.0, seed),
            &tasks,
            GraspConfig::static_baseline(),
        );
        series.push(vec![
            n as f64,
            efficiency(reference, adaptive.makespan.as_secs(), n),
            efficiency(reference, statics.makespan.as_secs(), n),
        ]);
    }
    series
}

/// E7 — adaptation response: farm throughput over time around a load spike.
pub fn e7_adaptation_response(nodes: usize, tasks_n: usize) -> (Table, Series) {
    let spike_start = 40.0;
    let make_grid = || spike_grid(nodes, 40.0, 0.5, spike_start, 1e6);
    let tasks = standard_farm_tasks(tasks_n, 60.0);

    let mut adaptive_cfg = GraspConfig::default();
    adaptive_cfg.calibration.selection_fraction = 1.0;
    adaptive_cfg.execution.monitor_interval_s = 10.0;
    let adaptive = farm_makespan(&make_grid(), &tasks, adaptive_cfg);
    let rigid = farm_makespan(&make_grid(), &tasks, GraspConfig::static_baseline());

    let mut table = Table::new(
        format!("E7: adaptation response to a 50% pool load spike at t={spike_start}s"),
        &[
            "variant",
            "makespan_s",
            "adaptations",
            "min_interval_throughput",
        ],
    );
    table.push_row(vec![
        "adaptive".into(),
        format!("{:.1}", adaptive.makespan.as_secs()),
        adaptive.adaptation.len().to_string(),
        format!("{:.3}", adaptive.timeline.min_rate()),
    ]);
    table.push_row(vec![
        "rigid".into(),
        format!("{:.1}", rigid.makespan.as_secs()),
        rigid.adaptation.len().to_string(),
        format!("{:.3}", rigid.timeline.min_rate()),
    ]);

    let mut series = Series::new(
        "E7: farm throughput over time (tasks/s per interval)",
        &["t_s", "adaptive", "rigid"],
    );
    let a = adaptive.timeline.rates();
    let r = rigid.timeline.rates();
    let interval = adaptive.timeline.interval();
    for i in 0..a.len().max(r.len()) {
        series.push(vec![
            i as f64 * interval,
            a.get(i).copied().unwrap_or(0.0),
            r.get(i).copied().unwrap_or(0.0),
        ]);
    }
    (table, series)
}

/// E9 — composed skeletons through the unified API.
///
/// Runs the imaging chain in three shapes on the same spiking grid: the
/// plain pipeline, the same chain as a **pipeline-of-farms** (heavy Sobel
/// stage farmed across `sobel_replicas` workers) and the stream split into
/// a **farm-of-pipelines** of `lanes` independent lanes.  Reports makespan,
/// throughput and adaptations per shape — the compositional payoff the
/// unified `Skeleton`/`Backend` API exists to measure.
pub fn e9_nested_skeletons(frames: usize, lanes: usize, sobel_replicas: usize) -> Table {
    let job = crate::scenarios::standard_imaging_job(frames);
    let shapes: Vec<(&str, Skeleton)> = vec![
        ("pipeline", Skeleton::pipeline(job.as_stages(2e4), frames)),
        (
            "pipeline-of-farms",
            job.as_nested_skeleton(2e4, sobel_replicas),
        ),
        ("farm-of-pipelines", job.as_farm_of_pipelines(2e4, lanes)),
    ];
    let mut table = Table::new(
        format!("E9: composed imaging skeletons ({frames} frames, spike grid)"),
        &["shape", "kind", "makespan_s", "units_per_s", "adaptations"],
    );
    for (name, skeleton) in &shapes {
        let grid = spike_grid(8, 40.0, 0.5, 30.0, 1e6);
        let report = Grasp::new(GraspConfig::default())
            .run(&SimBackend::new(&grid), skeleton)
            .expect("nested experiment run failed");
        table.push_row(vec![
            name.to_string(),
            report.outcome.kind.name().to_string(),
            format!("{:.1}", report.outcome.makespan_s),
            format!("{:.3}", report.outcome.throughput()),
            report.outcome.adaptations().to_string(),
        ]);
    }
    table
}

/// E10 — adaptive vs static scheduling under node churn, on both backends.
///
/// The non-dedicated-grid regime GRASP exists for: nodes are revoked at
/// random and recover later.  On the simulated backend the churn is a random
/// [`gridsim::FaultPlan`] sweep over outage probability; on the thread
/// backend the churn analogue is injected worker panics (one panic ≈ one
/// revocation caught and retried by the fault-isolated farm).  The same
/// irregular farm expression runs under GRASP's adaptive configuration and
/// under the rigid `StaticBlock` baseline; the table reports makespans, the
/// adaptive speedup, and the adaptive run's [`ResilienceReport`] counters.
pub fn e10_churn(
    nodes: usize,
    tasks_n: usize,
    p_outages: &[f64],
    mean_outage_s: f64,
    seed: ScenarioSeed,
) -> Table {
    // Cost unit per backend: sim rows report virtual-second makespans;
    // thread rows report the work critical path in declared work units (see
    // below) — within a row the adaptive/static comparison is like-for-like.
    let mut table = Table::new(
        format!("E10: scheduling under node churn ({nodes} nodes, {tasks_n} irregular tasks)"),
        &[
            "backend",
            "p_outage",
            "adaptive_cost",
            "static_cost",
            "adaptive_speedup",
            "requeued",
            "retried",
            "nodes_lost",
            "worksteal_cost",
        ],
    );
    let steal_config = || GraspConfig {
        scheduler: SchedulePolicy::WorkStealing { min_chunk: 1 },
        ..GraspConfig::default()
    };
    let skeleton = Skeleton::farm(irregular_farm_tasks(tasks_n, 20.0));
    // Churn horizon ≈ the static run's expected span, so outages land mid-job.
    let horizon_s = 1.2 * skeleton.total_work() / (40.0 * nodes as f64);
    // Each cell averages over a few fault-plan seeds: a single plan can land
    // its outages arbitrarily kindly for either policy.
    const REPS: u64 = 3;

    for &p in p_outages {
        // ---- simulated grid: random revocation/recovery churn ----
        let run_sim = |config: GraspConfig, rep: u64| {
            let grid = churn_grid(
                nodes,
                40.0,
                p,
                mean_outage_s,
                horizon_s,
                ScenarioSeed(seed.0 + rep),
            );
            Grasp::new(config)
                .run(&SimBackend::new(&grid), &skeleton)
                .expect("churn experiment run failed (master node is churn-free)")
        };
        let mut a_sum = 0.0;
        let mut s_sum = 0.0;
        let mut w_sum = 0.0;
        let mut resilience = ResilienceReport::default();
        for rep in 0..REPS {
            let adaptive = run_sim(GraspConfig::default(), rep);
            let statics = run_sim(GraspConfig::static_baseline(), rep);
            let steals = run_sim(steal_config(), rep);
            a_sum += adaptive.outcome.makespan_s;
            s_sum += statics.outcome.makespan_s;
            w_sum += steals.outcome.makespan_s;
            resilience.requeued_tasks += adaptive.outcome.resilience.requeued_tasks;
            resilience.retried_tasks += adaptive.outcome.resilience.retried_tasks;
            resilience.nodes_lost += adaptive.outcome.resilience.nodes_lost;
        }
        let (a, s, w) = (
            a_sum / REPS as f64,
            s_sum / REPS as f64,
            w_sum / REPS as f64,
        );
        table.push_row(vec![
            "sim".into(),
            format!("{p:.2}"),
            format!("{a:.1}"),
            format!("{s:.1}"),
            format!("{:.2}", s / a.max(1e-9)),
            resilience.requeued_tasks.to_string(),
            resilience.retried_tasks.to_string(),
            resilience.nodes_lost.to_string(),
            format!("{w:.1}"),
        ]);

        // ---- real threads: injected worker panics as the churn analogue ----
        let injected = ((p * tasks_n as f64 * 0.1).round() as usize).max(1);
        let run_threads = |mut config: GraspConfig, keep_stealing: bool| {
            // The adaptive side uses guided demand-driven chunking rather
            // than calibration-weighted chunks: the weights come from
            // wall-clock task timings, which an overcommitted/one-core CI
            // machine measures as scheduler noise — amplified into oversized
            // chunks, they would turn this row into a coin flip.  The
            // work-stealing contender keeps its policy: a noise-oversized
            // owner chunk stays stealable, so the same amplification cannot
            // strand work.
            if config.scheduler.is_adaptive() && !keep_stealing {
                config.scheduler = SchedulePolicy::Guided { min_chunk: 1 };
            }
            // Attempts exceed the whole injection budget, so no single task
            // can exhaust its retries even if it absorbs every injection;
            // likewise the panic budget, so no worker retires — which worker
            // happens to absorb the injections is scheduler luck, and
            // retirement would fold that luck into the balance comparison.
            let backend = ThreadBackend::new(4).with_config(
                BackendConfig::new()
                    .spin_per_work_unit(20_000)
                    .max_task_attempts(injected + 2)
                    .worker_panic_budget(injected + 1)
                    .faults(FaultInjection::none().panics(injected)),
            );
            Grasp::new(config)
                .run(&backend, &skeleton)
                .expect("thread churn run failed (injection below the retry budget)")
        };
        // Thread rows score the schedule by its work critical path (max
        // declared work units executed by one worker): proportional to the
        // makespan on a dedicated machine with ≥ 4 uniform cores, and unlike
        // raw wall-clock it stays schedule-sensitive on shared or
        // single-core CI machines, where every schedule serialises to the
        // same wall time.
        let critical_path = |outcome: &SkeletonOutcome| match &outcome.detail {
            OutcomeDetail::ThreadFarm {
                work_per_worker, ..
            } => work_per_worker.iter().copied().fold(0.0, f64::max),
            _ => outcome.makespan_s,
        };
        let mut a_sum = 0.0;
        let mut s_sum = 0.0;
        let mut w_sum = 0.0;
        let mut resilience = ResilienceReport::default();
        for _ in 0..REPS {
            let adaptive = run_threads(GraspConfig::default(), false);
            let statics = run_threads(GraspConfig::static_baseline(), false);
            let steals = run_threads(steal_config(), true);
            a_sum += critical_path(&adaptive.outcome);
            s_sum += critical_path(&statics.outcome);
            w_sum += critical_path(&steals.outcome);
            resilience.requeued_tasks += adaptive.outcome.resilience.requeued_tasks;
            resilience.retried_tasks += adaptive.outcome.resilience.retried_tasks;
            resilience.nodes_lost += adaptive.outcome.resilience.nodes_lost;
        }
        let (a, s, w) = (
            a_sum / REPS as f64,
            s_sum / REPS as f64,
            w_sum / REPS as f64,
        );
        table.push_row(vec![
            "threads".into(),
            format!("{p:.2}"),
            format!("{a:.0}"),
            format!("{s:.0}"),
            format!("{:.2}", s / a.max(1e-9)),
            resilience.requeued_tasks.to_string(),
            resilience.retried_tasks.to_string(),
            resilience.nodes_lost.to_string(),
            format!("{w:.0}"),
        ]);
    }
    table
}

/// E11 — demand-driven-only vs full-adaptive threads under an injected
/// worker slowdown.
///
/// Before the backend-neutral engine, the thread backend could only adapt
/// through demand-driven chunking: a worker that degrades mid-run keeps
/// pulling work, it just pulls more slowly.  With the shared Algorithm-2
/// loop, the same wall-clock observations that feed chunk weighting also
/// feed the threshold monitor, and a worker whose per-work-unit times
/// breach `demote_factor × Z` is demoted outright.  This experiment injects
/// a `slow_factor`× slowdown on worker 0 shortly after calibration and
/// compares the two regimes on identical workloads: the full-adaptive run
/// must show the demotion in its adaptation log, and the slowed worker
/// should absorb fewer units (it is cut off instead of trickling on).
/// Tuning mirrors the wall-clock acceptance tests: slowed units stay well
/// under the monitor interval so the slow worker reports into every
/// evaluation window, and `min_active_nodes = 1` keeps a demotion slot
/// available on noisy shared machines.
pub fn e11_thread_slowdown(tasks_n: usize, slow_factor: f64) -> Table {
    let mut table = Table::new(
        format!("E11: thread farm under a {slow_factor}x worker-0 slowdown ({tasks_n} units)"),
        &[
            "variant",
            "makespan_s",
            "slow_worker_units",
            "slow_worker_work",
            "demotions",
            "recalibrations",
            "slow_worker_load_est",
        ],
    );
    let skeleton = Skeleton::farm(TaskSpec::uniform(tasks_n, 1.0, 0, 0));
    let run = |engine_on: bool| {
        let backend = ThreadBackend::new(4).with_config(
            BackendConfig::new()
                .spin_per_work_unit(30_000)
                .faults(FaultInjection::none().worker_slowdown(0, 8, slow_factor)),
        );
        let mut cfg = GraspConfig {
            scheduler: SchedulePolicy::SelfScheduling,
            ..GraspConfig::default()
        };
        cfg.execution.adaptive = engine_on;
        cfg.execution.monitor_interval_s = 3e-3; // wall seconds
        cfg.execution.min_active_nodes = 1;
        Grasp::new(cfg)
            .run(&backend, &skeleton)
            .expect("slowdown experiment run failed")
    };
    for (name, engine_on) in [("demand-driven", false), ("full-adaptive", true)] {
        let report = run(engine_on);
        let (units, work, load) = match &report.outcome.detail {
            OutcomeDetail::ThreadFarm {
                tasks_per_worker,
                work_per_worker,
                load_per_worker,
                ..
            } => (tasks_per_worker[0], work_per_worker[0], load_per_worker[0]),
            _ => (0, 0.0, 0.0),
        };
        table.push_row(vec![
            name.to_string(),
            format!("{:.3}", report.outcome.makespan_s),
            units.to_string(),
            format!("{work:.1}"),
            report.outcome.adaptation_log.demotions().to_string(),
            report.outcome.adaptation_log.recalibrations().to_string(),
            format!("{load:.3}"),
        ]);
    }
    table
}

/// E12 — thread vs process backends on the same matmul farm, and the cost
/// of the serialization boundary.
///
/// The same fixed-seed blocked matmul runs three ways: on the shared-memory
/// thread backend, on the process-isolated backend with synthetic spin
/// payloads (like-for-like with threads: identical kernel, the only delta is
/// process isolation + the wire), and on the process backend shipping the
/// *real* serialized band tasks (workers decode, multiply, and answer with a
/// result digest).  Alongside makespan/throughput the proc rows report the
/// wire volume in both directions, the master-side seconds spent encoding
/// and writing frames (separately — `encode_s` is the pure serialization
/// cost the zero-copy data plane minimises), that cost as a fraction of the
/// makespan, and the payload bytes copied beyond the one mandatory encode
/// per frame, per unit (`bytes_copied_per_unit`, 0 on the pipe transport) —
/// the serialization overhead the ad-hoc-grid literature puts on the
/// critical path.
pub fn e12_proc_backend(matmul_n: usize, block_rows: usize) -> Table {
    let job = MatMulJob {
        n: matmul_n,
        block_rows,
        seed: 7,
    };
    let skeleton = Skeleton::farm(job.as_tasks(1e6));
    let spin = 20_000;
    let mut table = Table::new(
        format!(
            "E12: thread vs process backends ({} matmul bands, n={matmul_n})",
            job.task_count()
        ),
        &[
            "variant",
            "makespan_s",
            "units_per_s",
            "wire_bytes",
            "wire_write_s",
            "wire_fraction",
            "encode_s",
            "bytes_copied_per_unit",
        ],
    );
    let units = skeleton.work_units().max(1);
    let mut push = |name: &str, outcome: &SkeletonOutcome| {
        assert!(
            outcome.conserves_units_of(&skeleton),
            "{name} must conserve units"
        );
        let (bytes, wire_s, encode_s, copied) = match &outcome.detail {
            OutcomeDetail::ProcFarm {
                bytes_sent,
                bytes_received,
                wire_write_s,
                wire_encode_s,
                bytes_copied,
                ..
            } => (
                bytes_sent + bytes_received,
                *wire_write_s,
                *wire_encode_s,
                *bytes_copied,
            ),
            _ => (0, 0.0, 0.0, 0),
        };
        table.push_row(vec![
            name.to_string(),
            format!("{:.6}", outcome.makespan_s),
            format!("{:.1}", outcome.throughput()),
            bytes.to_string(),
            format!("{wire_s:.6}"),
            format!("{:.4}", wire_s / outcome.makespan_s.max(1e-9)),
            format!("{encode_s:.6}"),
            format!("{:.1}", copied as f64 / units as f64),
        ]);
    };
    let grasp = Grasp::new(GraspConfig::default());
    let threads = grasp
        .run(
            &ThreadBackend::new(4).with_config(BackendConfig::new().spin_per_work_unit(spin)),
            &skeleton,
        )
        .expect("thread matmul run failed");
    push("threads", &threads.outcome);
    let proc_spin = grasp
        .run(
            &ProcBackend::new(4).with_config(BackendConfig::new().spin_per_work_unit(spin)),
            &skeleton,
        )
        .expect("proc (spin) run failed — build grasp-proc-worker (cargo build) first");
    push("proc-spin", &proc_spin.outcome);
    let proc_real = grasp
        .run(
            &ProcBackend::new(4).with_payloads(job.wire_payloads()),
            &skeleton,
        )
        .expect("proc (matmul payload) run failed");
    push("proc-matmul", &proc_real.outcome);
    table
}

/// E13 — dynamic membership: a fixed pool vs a pool that grows mid-run.
///
/// The socket backend's headline claim, measured: the same farm runs once on
/// a full pool present from the start, and once on half the pool with the
/// other half joining mid-run through the Join/Welcome handshake (each
/// newcomer is parked until a quarter of the units are done, then ranked by
/// a calibration prefix of probe units before receiving real work).  Both
/// runs use the deterministic loopback transport — workers are in-process
/// protocol threads, so the comparison measures membership mechanics, not
/// socket noise — and both must conserve the unit set exactly.  The table
/// reports how the growing pool closes the gap: admissions on the audit
/// trail, calibration probes spent, and the share of real units the late
/// joiners absorbed — plus the master's frame-encode seconds and the payload
/// bytes copied per unit (the loopback transport's channel hand-off is the
/// one copy its in-process delivery cannot avoid).
pub fn e13_net_membership(tasks_n: usize, pool: usize) -> Table {
    let pool = pool.max(2);
    let founders = (pool / 2).max(1);
    let hold_until = (tasks_n / 4).max(1);
    let probes_per_joiner = 2;

    let mut table = Table::new(
        format!("E13: dynamic membership, fixed vs growing pool ({tasks_n} units, {pool} workers)"),
        &[
            "variant",
            "workers_start",
            "workers_final",
            "makespan_s",
            "units_per_s",
            "node_joins",
            "calibration_probes",
            "late_worker_units",
            "encode_s",
            "bytes_copied_per_unit",
        ],
    );

    let mut run = |name: &str, wait_for: usize, grow: bool| {
        let (net, acceptor) = LoopbackNet::new();
        let mut backend = NetBackend::over(Box::new(acceptor), wait_for).with_config(
            BackendConfig::new()
                .heartbeat(0.0, 1.0)
                .spin_per_work_unit(20_000),
        );
        if grow {
            backend = backend
                .with_hold_joins_until(hold_until)
                .with_join_calibration_units(probes_per_joiner);
        }
        let handles: Vec<_> = (0..pool)
            .map(|_| {
                let conn = net.connect().expect("loopback connect failed");
                std::thread::spawn(move || run_connection(conn, WorkerOptions::default()))
            })
            .collect();
        let skeleton = Skeleton::farm(TaskSpec::uniform(tasks_n, 1.0, 0, 0));
        let report = Grasp::new(GraspConfig::default())
            .run(&backend, &skeleton)
            .expect("membership experiment run failed");
        for h in handles {
            assert_eq!(h.join().unwrap(), 0, "every worker must exit cleanly");
        }
        assert!(
            report.outcome.conserves_units_of(&skeleton),
            "{name}: the membership change must conserve the unit set"
        );
        let outcome = &report.outcome;
        let (joins, probes, late_units, encode_s, copied) = match &outcome.detail {
            OutcomeDetail::NetFarm {
                members,
                wire_encode_s,
                bytes_copied,
                ..
            } => (
                outcome.adaptation_log.node_joins(),
                members.iter().map(|m| m.calibration_probes).sum::<usize>(),
                members
                    .iter()
                    .filter(|m| m.joined_mid_run)
                    .map(|m| m.units_completed)
                    .sum::<usize>(),
                *wire_encode_s,
                *bytes_copied,
            ),
            other => panic!("unexpected outcome detail {other:?}"),
        };
        table.push_row(vec![
            name.to_string(),
            wait_for.to_string(),
            pool.to_string(),
            format!("{:.6}", outcome.makespan_s),
            format!("{:.1}", outcome.throughput()),
            joins.to_string(),
            probes.to_string(),
            late_units.to_string(),
            format!("{encode_s:.6}"),
            format!("{:.1}", copied as f64 / tasks_n.max(1) as f64),
        ]);
    };
    run("fixed", pool, false);
    run("growing", founders, true);
    table
}

/// E14 — resident service vs per-job pool spin-up on a mixed job stream.
///
/// The same deterministic Poisson stream of small mixed-shape jobs
/// ([`ServiceMixJob`]) is offered twice.  The *spin-up* variant is the
/// pre-service workflow: each arriving job constructs a fresh
/// [`ThreadBackend`], calibrates from scratch, runs, and tears the pool
/// down.  The *service* variant submits every arrival to one resident
/// [`GraspService`], which leases a persistent worker pool, batches small
/// jobs into shared dispatch rounds, and re-serves cached calibration
/// profiles across jobs.
///
/// Reports, per variant: job throughput, p50/p99 job latency (completion
/// minus scheduled arrival, so queueing delay counts), the throughput
/// ratio against the spin-up baseline (`job_speedup`, gated by CI), and
/// the service's calibration-profile reuse accounting.
pub fn e14_service(jobs: usize, workers: usize) -> Table {
    use std::time::{Duration, Instant};

    let jobs = jobs.max(4);
    let workers = workers.max(2);
    // Dense arrivals: the mean gap is far below one spin-up's pool-construction
    // and calibration cost, so the baseline saturates and queues while the
    // resident pool absorbs the same stream in shared rounds.
    let stream = ServiceMixJob {
        jobs,
        units_per_job: 6,
        mean_interarrival_s: 0.0002,
        ..ServiceMixJob::default()
    };
    let arrivals = stream.arrivals();
    let spin: u64 = 1_000;

    let mut table = Table::new(
        format!("E14: resident service vs per-job spin-up ({jobs} jobs, {workers} workers)"),
        &[
            "variant",
            "jobs",
            "workers",
            "jobs_per_s",
            "p50_latency_s",
            "p99_latency_s",
            "job_speedup",
            "profile_hits",
            "jobs_reusing_profiles",
            "rounds",
        ],
    );

    let percentile = |sorted: &[f64], q: f64| -> f64 {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    // Replay the schedule in wall time: sleep to each job's arrival stamp.
    let pace = |epoch: Instant, arrival_s: f64| {
        let target = Duration::from_secs_f64(arrival_s);
        let elapsed = epoch.elapsed();
        if elapsed < target {
            std::thread::sleep(target - elapsed);
        }
    };

    // Baseline: a fresh pool + fresh calibration per arriving job, jobs
    // served strictly in arrival order (the pre-service workflow).
    let spinup_epoch = Instant::now();
    let mut spinup_latencies = Vec::with_capacity(jobs);
    for a in &arrivals {
        pace(spinup_epoch, a.arrival_s);
        let backend =
            ThreadBackend::new(workers).with_config(BackendConfig::new().spin_per_work_unit(spin));
        let report = Grasp::new(GraspConfig::default())
            .run(&backend, &a.skeleton)
            .expect("per-job spin-up run failed");
        assert!(
            report.outcome.conserves_units_of(&a.skeleton),
            "spin-up variant must conserve each job's unit set"
        );
        spinup_latencies.push(spinup_epoch.elapsed().as_secs_f64() - a.arrival_s);
    }
    let spinup_total_s = spinup_epoch.elapsed().as_secs_f64();
    let spinup_rate = jobs as f64 / spinup_total_s.max(1e-9);

    // Resident service: one shared pool and engine for the whole stream.
    let mut config = ServiceConfig::with_workers(workers);
    config.spin_per_work_unit = spin;
    config.backlog_capacity = jobs.max(config.backlog_capacity);
    let service = GraspService::start(config);
    let service_epoch = Instant::now();
    let mut waiters = Vec::with_capacity(jobs);
    for a in &arrivals {
        pace(service_epoch, a.arrival_s);
        let spec = JobSpec::default().with_payload_kind(a.shape);
        let handle = service
            .submit(a.skeleton.clone(), spec)
            .expect("service admission must not overflow at experiment scale");
        let arrival_s = a.arrival_s;
        let skeleton = a.skeleton.clone();
        waiters.push(std::thread::spawn(move || {
            let outcome = handle.wait().expect("service job failed");
            assert!(
                outcome.conserves_units_of(&skeleton),
                "service variant must conserve each job's unit set"
            );
            let latency_s = service_epoch.elapsed().as_secs_f64() - arrival_s;
            (latency_s, outcome)
        }));
    }
    let mut service_latencies = Vec::with_capacity(jobs);
    let mut jobs_reusing_profiles = 0usize;
    for w in waiters {
        let (latency_s, outcome) = w.join().expect("service waiter thread panicked");
        service_latencies.push(latency_s);
        if let OutcomeDetail::Service { profile_hits, .. } = &outcome.detail {
            if *profile_hits > 0 {
                jobs_reusing_profiles += 1;
            }
        }
    }
    let service_total_s = service_epoch.elapsed().as_secs_f64();
    let service_rate = jobs as f64 / service_total_s.max(1e-9);
    let stats = service.stats();
    service.shutdown();

    spinup_latencies.sort_by(|a, b| a.total_cmp(b));
    service_latencies.sort_by(|a, b| a.total_cmp(b));
    let mut push = |name: &str,
                    rate: f64,
                    latencies: &[f64],
                    speedup: f64,
                    hits: u64,
                    reusing: usize,
                    rounds: u64| {
        table.push_row(vec![
            name.to_string(),
            jobs.to_string(),
            workers.to_string(),
            format!("{rate:.1}"),
            format!("{:.6}", percentile(latencies, 0.50)),
            format!("{:.6}", percentile(latencies, 0.99)),
            format!("{speedup:.3}"),
            hits.to_string(),
            reusing.to_string(),
            rounds.to_string(),
        ]);
    };
    push(
        "spin-up",
        spinup_rate,
        &spinup_latencies,
        1.0,
        0,
        0,
        jobs as u64,
    );
    push(
        "service",
        service_rate,
        &service_latencies,
        service_rate / spinup_rate.max(1e-9),
        stats.profile.hits,
        jobs_reusing_profiles,
        stats.rounds,
    );
    table
}

/// E15 — scale smoke: the simulated grid at ad-hoc-grid numbers.
///
/// Runs one adaptive farm over a uniform virtual cluster of `nodes` nodes
/// (thousands) pushing `units` work units (millions), under a light random
/// churn plan so the fault index is exercised at the same scale.  This is
/// not a performance claim about GRASP — it is a harness check: the
/// simulator's event queue, the scheduler's per-node state, and the fault
/// index must stay near-linear in nodes × units, or paper-scale experiments
/// stop being CI-runnable.  Reports the virtual makespan, the wall seconds
/// the simulation itself took, the achieved simulation rate in units per
/// wall second, and the churn-recovery accounting; the run must conserve
/// the unit set exactly.
pub fn e15_scale_smoke(nodes: usize, units: usize, seed: ScenarioSeed) -> Table {
    use std::time::Instant;
    let nodes = nodes.max(2);
    let tasks = standard_farm_tasks(units, 8.0);
    let skeleton = Skeleton::farm(tasks);
    // Brief outages across the whole pool: enough churn that the fault
    // index and the requeue path run at scale, not so much that the run is
    // dominated by recovery stalls.
    let horizon_s = 1.5 * skeleton.total_work() / (40.0 * nodes as f64);
    let grid = churn_grid(nodes, 40.0, 0.05, horizon_s * 0.1, horizon_s, seed);
    let t0 = Instant::now();
    let report = Grasp::new(GraspConfig::default())
        .run(&SimBackend::new(&grid), &skeleton)
        .expect("scale smoke run failed (node 0 is churn-free)");
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(
        report.outcome.conserves_units_of(&skeleton),
        "the scale smoke must conserve all {units} units"
    );
    let mut table = Table::new(
        format!("E15: gridsim scale smoke ({nodes} nodes, {units} units, light churn)"),
        &[
            "nodes",
            "units",
            "virtual_makespan_s",
            "wall_s",
            "sim_units_per_wall_s",
            "requeued",
            "nodes_lost",
        ],
    );
    table.push_row(vec![
        nodes.to_string(),
        units.to_string(),
        format!("{:.1}", report.outcome.makespan_s),
        format!("{wall_s:.2}"),
        format!("{:.0}", units as f64 / wall_s.max(1e-9)),
        report.outcome.resilience.requeued_tasks.to_string(),
        report.outcome.resilience.nodes_lost.to_string(),
    ]);
    table
}

/// E16 — work stealing vs demand-driven chunking on an asymmetric thread
/// farm.
///
/// Worker 0 of four degrades by `slow_factor`× after its first few units (an
/// asymmetric-cores analogue: one core suddenly becomes much slower
/// mid-run).  The demand-driven contender pulls guided chunks off the shared
/// queue: a chunk the slow worker has already claimed is irrevocable, so one
/// unlucky early grab strands a block of work at `slow_factor`× speed.  The
/// work-stealing contender seeds per-worker deques instead: the slow
/// worker's remaining range stays stealable, the engine's calibration ranks
/// steer thieves toward it, and the stranded block is redistributed.
///
/// Both contenders run the shared adaptation engine with demotion blocked
/// (`min_active_nodes` = pool size), so the comparison isolates the
/// rebalancing mechanism itself rather than crediting the demotion path.
/// Like E10's thread rows, each schedule is scored by a deterministic
/// weighted critical path — worker 0's executed work counts `slow_factor`×
/// — rather than raw wall-clock, so the result stays meaningful on shared
/// CI machines where every schedule serialises to similar wall time.
pub fn e16_steal_rebalance(tasks_n: usize, slow_factor: f64) -> Table {
    let workers = 4usize;
    let skeleton = Skeleton::farm(irregular_farm_tasks(tasks_n, 20.0));
    let mut table = Table::new(
        format!(
            "E16: work stealing on an asymmetric farm \
             ({tasks_n} irregular units, worker 0 slowed {slow_factor}x)"
        ),
        &[
            "variant",
            "cost",
            "slow_worker_work",
            "steals_attempted",
            "steals_completed",
            "units_stolen",
            "steal_speedup",
        ],
    );
    let run = |scheduler: SchedulePolicy| {
        let backend = ThreadBackend::new(workers).with_config(
            BackendConfig::new()
                .spin_per_work_unit(30_000)
                .faults(FaultInjection::none().worker_slowdown(0, 8, slow_factor)),
        );
        let mut cfg = GraspConfig {
            scheduler,
            ..GraspConfig::default()
        };
        cfg.execution.adaptive = true;
        cfg.execution.monitor_interval_s = 3e-3; // wall seconds
                                                 // Demotion is blocked: every worker stays in rotation, so any
                                                 // rebalancing credit belongs to the dispatch mechanism alone.
        cfg.execution.min_active_nodes = workers;
        let report = Grasp::new(cfg)
            .run(&backend, &skeleton)
            .expect("steal rebalance run failed");
        assert!(
            report.outcome.conserves_units_of(&skeleton),
            "both contenders must conserve the unit set"
        );
        report
    };
    // Weighted critical path: worker 0's executed work counts slow_factor×.
    let cost_of = |outcome: &SkeletonOutcome| match &outcome.detail {
        OutcomeDetail::ThreadFarm {
            work_per_worker, ..
        } => {
            let slow = work_per_worker.first().copied().unwrap_or(0.0) * slow_factor;
            let fast = work_per_worker.iter().skip(1).copied().fold(0.0, f64::max);
            slow.max(fast)
        }
        _ => outcome.makespan_s,
    };
    let slow_work_of = |outcome: &SkeletonOutcome| match &outcome.detail {
        OutcomeDetail::ThreadFarm {
            work_per_worker, ..
        } => work_per_worker.first().copied().unwrap_or(0.0),
        _ => 0.0,
    };
    // Average over a few repetitions: which worker grabs which early chunk
    // is a thread race, and a single run can land it kindly for either side.
    const REPS: usize = 3;
    let mut demand_cost = 0.0;
    let mut steal_cost = 0.0;
    let mut demand_slow_work = 0.0;
    let mut steal_slow_work = 0.0;
    let mut attempted = 0usize;
    let mut completed = 0usize;
    let mut stolen = 0usize;
    for _ in 0..REPS {
        let demand = run(SchedulePolicy::Guided { min_chunk: 1 });
        let steal = run(SchedulePolicy::WorkStealing { min_chunk: 1 });
        demand_cost += cost_of(&demand.outcome);
        steal_cost += cost_of(&steal.outcome);
        demand_slow_work += slow_work_of(&demand.outcome);
        steal_slow_work += slow_work_of(&steal.outcome);
        if let OutcomeDetail::ThreadFarm {
            steals_attempted,
            steals_completed,
            units_stolen,
            ..
        } = &steal.outcome.detail
        {
            attempted += steals_attempted;
            completed += steals_completed;
            stolen += units_stolen;
        }
    }
    let (d, w) = (demand_cost / REPS as f64, steal_cost / REPS as f64);
    table.push_row(vec![
        "demand-driven".into(),
        format!("{d:.0}"),
        format!("{:.0}", demand_slow_work / REPS as f64),
        "0".into(),
        "0".into(),
        "0".into(),
        "1.000".into(),
    ]);
    table.push_row(vec![
        "work-stealing".into(),
        format!("{w:.0}"),
        format!("{:.0}", steal_slow_work / REPS as f64),
        attempted.to_string(),
        completed.to_string(),
        stolen.to_string(),
        format!("{:.3}", d / w.max(1e-9)),
    ]);
    table
}

/// E17 — tail speculation on the Time-Warp transaction farm.
///
/// The straggler scenario the adaptive loop alone cannot fix: near the end
/// of a farm run the only work left is already in flight on a degraded
/// worker, and every healthy worker idles behind it — demotion is useless
/// (the unit is claimed) and rebalancing has nothing left to move.  With
/// `speculate_tail_fraction > 0` the engine lets an idle worker duplicate
/// such an in-flight unit; the first result wins, the loser is discarded
/// unrecorded.  The workload is the optimistic transaction simulation:
/// declared work = the partition's exact processed-event count (rollback
/// re-executions included), so rollback-heavy partitions are genuinely
/// bigger tasks and whichever of them the slowed worker holds is the
/// classic tail straggler.
///
/// Scored like E16 by the rep-averaged weighted critical path (worker 0's
/// credited work counts `slow_factor`×) rather than wall-clock: first-wins
/// accounting credits each unit to the worker whose result landed, so a
/// speculation win moves the superseded tail unit's cost off the slowed
/// worker — the path shortens by exactly what the duplicate saved.
/// Demotion is blocked (`min_active_nodes = workers`) so the comparison
/// isolates speculation from the engine's other remedies.
///
/// The farm is deliberately small (a few large partitions per worker) and
/// worker 0 is slowed from its very first unit: under self-scheduling it
/// then claims exactly one task for the whole run, so the no-speculation
/// path is dominated by that single `slow_factor`-amplified unit while the
/// speculative run supersedes it — the signal is the whole straggler task,
/// not a noise-sized reallocation.
pub fn e17_speculation(partitions: usize, slow_factor: f64) -> Table {
    let workers = 4usize;
    let job = TranSimJob {
        partitions,
        ..TranSimJob::default()
    };
    let skeleton = Skeleton::farm(job.as_tasks(40.0));
    let mut table = Table::new(
        format!(
            "E17: tail speculation on the Time-Warp transaction farm \
             ({partitions} partitions, worker 0 slowed {slow_factor}x)"
        ),
        &[
            "variant",
            "cost",
            "slow_worker_work",
            "speculated_units",
            "speculation_wins",
            "spec_tail_speedup",
        ],
    );
    let run = |tail_fraction: f64| {
        let backend = ThreadBackend::new(workers).with_config(
            BackendConfig::new()
                .spin_per_work_unit(30_000)
                .faults(FaultInjection::none().worker_slowdown(0, 0, slow_factor)),
        );
        let mut cfg = GraspConfig {
            scheduler: SchedulePolicy::SelfScheduling,
            ..GraspConfig::default()
        };
        cfg.execution.adaptive = true;
        cfg.execution.monitor_interval_s = 3e-3; // wall seconds
        cfg.execution.min_active_nodes = workers;
        cfg.execution.speculate_tail_fraction = tail_fraction;
        let report = Grasp::new(cfg)
            .run(&backend, &skeleton)
            .expect("speculation experiment run failed");
        assert!(
            report.outcome.conserves_units_of(&skeleton),
            "first-result-wins must conserve the unit set"
        );
        report
    };
    // Weighted critical path: worker 0's credited work counts slow_factor×.
    let cost_of = |outcome: &SkeletonOutcome| match &outcome.detail {
        OutcomeDetail::ThreadFarm {
            work_per_worker, ..
        } => {
            let slow = work_per_worker.first().copied().unwrap_or(0.0) * slow_factor;
            let fast = work_per_worker.iter().skip(1).copied().fold(0.0, f64::max);
            slow.max(fast)
        }
        _ => outcome.makespan_s,
    };
    let slow_work_of = |outcome: &SkeletonOutcome| match &outcome.detail {
        OutcomeDetail::ThreadFarm {
            work_per_worker, ..
        } => work_per_worker.first().copied().unwrap_or(0.0),
        _ => 0.0,
    };
    // Average over repetitions: which task the slowed worker holds at the
    // tail is a thread race, and a single run can land it kindly.
    const REPS: usize = 3;
    let mut plain_cost = 0.0;
    let mut spec_cost = 0.0;
    let mut plain_slow_work = 0.0;
    let mut spec_slow_work = 0.0;
    let mut speculated = 0usize;
    let mut wins = 0usize;
    for _ in 0..REPS {
        let plain = run(0.0);
        let spec = run(0.25);
        assert!(
            plain.outcome.resilience.speculated_units == 0,
            "a zero tail fraction must never speculate"
        );
        plain_cost += cost_of(&plain.outcome);
        spec_cost += cost_of(&spec.outcome);
        plain_slow_work += slow_work_of(&plain.outcome);
        spec_slow_work += slow_work_of(&spec.outcome);
        speculated += spec.outcome.resilience.speculated_units;
        wins += spec.outcome.resilience.speculation_wins;
    }
    let (p, s) = (plain_cost / REPS as f64, spec_cost / REPS as f64);
    table.push_row(vec![
        "no-speculation".into(),
        format!("{p:.0}"),
        format!("{:.0}", plain_slow_work / REPS as f64),
        "0".into(),
        "0".into(),
        "1.000".into(),
    ]);
    table.push_row(vec![
        "speculation".into(),
        format!("{s:.0}"),
        format!("{:.0}", spec_slow_work / REPS as f64),
        speculated.to_string(),
        wins.to_string(),
        format!("{:.3}", p / s.max(1e-9)),
    ]);
    table
}

/// E8 — forecaster accuracy on representative load signals.
pub fn e8_forecaster_accuracy(samples: usize) -> Table {
    let signals: Vec<(&str, Box<dyn LoadModel>)> = vec![
        (
            "periodic",
            Box::new(PeriodicLoad::new(0.4, 0.3, 120.0, 0.0)),
        ),
        (
            "random-walk",
            Box::new(RandomWalkLoad::new(0.35, 0.04, 5.0, 5_000.0, 99)),
        ),
        (
            "spike",
            Box::new(SpikeLoad::new(
                0.05,
                0.85,
                SimTime::new(samples as f64 * 2.0),
                SimTime::new(samples as f64 * 4.0),
            )),
        ),
    ];
    let mut table = Table::new(
        "E8: one-step forecaster mean absolute error by load signal",
        &["forecaster", "periodic", "random-walk", "spike"],
    );
    type ForecasterBuilder = (&'static str, fn() -> Box<dyn Forecaster>);
    let forecaster_builders: Vec<ForecasterBuilder> = vec![
        ("last", || Box::new(LastValue::new())),
        ("running-mean", || Box::new(RunningMean::new())),
        ("window-mean", || Box::new(SlidingWindowMean::new(8))),
        ("window-median", || Box::new(SlidingWindowMedian::new(8))),
        ("exp-smooth", || Box::new(ExponentialSmoothing::new(0.3))),
        ("ar1", || Box::new(Ar1Forecaster::new(32))),
        ("adaptive", || Box::new(AdaptiveForecaster::standard())),
    ];
    // Pre-sample each signal at a 5-second cadence.
    let sampled: Vec<Vec<f64>> = signals
        .iter()
        .map(|(_, m)| {
            (0..samples)
                .map(|i| m.load_at(SimTime::new(i as f64 * 5.0)))
                .collect()
        })
        .collect();
    for (name, build) in &forecaster_builders {
        let mut row = vec![name.to_string()];
        for series in &sampled {
            let mut f = build();
            let mae = mean_absolute_error(f.as_mut(), series).unwrap_or(f64::NAN);
            row.push(format!("{mae:.4}"));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed() -> ScenarioSeed {
        ScenarioSeed(77)
    }

    #[test]
    fn e1_statistical_calibration_is_at_least_as_good_as_time_only() {
        let table = e1_calibration_quality(16, 2, seed());
        assert_eq!(table.len(), 3);
        let rho_of = |row: usize| table.rows[row][1].parse::<f64>().unwrap();
        // Univariate (row 1) should not be worse than time-only (row 0).
        assert!(
            rho_of(1) >= rho_of(0) - 0.05,
            "{} vs {}",
            rho_of(1),
            rho_of(0)
        );
        // All modes must correlate positively with the ground truth.
        assert!(rho_of(0) > 0.3);
    }

    #[test]
    fn e2_adaptive_is_not_slower_than_static_under_bursty_load() {
        let (table, series) = e2_farm_comparison(&[8], 120, seed());
        assert_eq!(table.len(), 1);
        assert_eq!(series.len(), 1);
        let adaptive = series.points[0][1];
        let statics = series.points[0][2];
        assert!(
            adaptive <= statics * 1.05,
            "adaptive {adaptive} should not lose clearly to static {statics}"
        );
        // The work-stealing policy degrades to weighted chunking on the sim
        // farm: it completes and stays in the same class as adaptive.
        let worksteal = series.points[0][4];
        assert!(
            worksteal > 0.0 && worksteal <= statics * 1.05,
            "worksteal {worksteal} should not lose clearly to static {statics}"
        );
    }

    #[test]
    fn e3_adaptive_pipeline_wins_after_the_spike() {
        let (table, series) = e3_pipeline_adaptation(120);
        assert_eq!(table.len(), 2);
        assert!(!series.is_empty());
        let adaptive_makespan: f64 = table.rows[0][1].parse().unwrap();
        let rigid_makespan: f64 = table.rows[1][1].parse().unwrap();
        assert!(adaptive_makespan < rigid_makespan);
    }

    #[test]
    fn e4_lower_thresholds_trigger_at_least_as_many_recalibrations() {
        let (table, series) = e4_threshold_sweep(&[1.2, 4.0], 8, 100, seed());
        assert_eq!(table.len(), 2);
        let low: f64 = series.points[0][2];
        let high: f64 = series.points[1][2];
        assert!(low >= high, "tight threshold {low} vs loose {high}");
    }

    #[test]
    fn e5_more_samples_mean_more_calibration_time() {
        let table = e5_calibration_overhead(&[1, 4], 8, 80, seed());
        assert_eq!(table.len(), 2);
        let c1: f64 = table.rows[0][1].parse().unwrap();
        let c4: f64 = table.rows[1][1].parse().unwrap();
        assert!(c4 > c1);
    }

    #[test]
    fn e6_reports_one_point_per_pool_size() {
        let series = e6_scalability(&[4, 8], 80, seed());
        assert_eq!(series.len(), 2);
        assert!(series.points.iter().all(|p| p[1] > 0.0 && p[2] > 0.0));
    }

    #[test]
    fn e7_adaptive_farm_recovers_better_than_rigid() {
        let (table, series) = e7_adaptation_response(8, 160);
        assert_eq!(table.len(), 2);
        assert!(!series.is_empty());
        let adaptive_makespan: f64 = table.rows[0][1].parse().unwrap();
        let rigid_makespan: f64 = table.rows[1][1].parse().unwrap();
        assert!(adaptive_makespan <= rigid_makespan * 1.05);
    }

    #[test]
    fn e9_reports_every_composed_shape() {
        let table = e9_nested_skeletons(24, 3, 3);
        assert_eq!(table.len(), 3);
        // Every shape completes the same stream, so the throughput column is
        // positive everywhere; the composed kinds are reported by name.
        assert_eq!(table.rows[1][1], "pipeline-of-farms");
        assert_eq!(table.rows[2][1], "farm-of-pipelines");
        for row in &table.rows {
            let makespan: f64 = row[2].parse().unwrap();
            let tput: f64 = row[3].parse().unwrap();
            assert!(makespan > 0.0 && tput > 0.0, "row {row:?}");
        }
    }

    #[test]
    fn e10_adaptive_beats_static_under_churn_on_the_simulated_grid() {
        let table = e10_churn(8, 160, &[0.7], 15.0, seed());
        assert_eq!(table.len(), 2, "one sim row + one threads row");
        let sim = &table.rows[0];
        assert_eq!(sim[0], "sim");
        let adaptive: f64 = sim[2].parse().unwrap();
        let statics: f64 = sim[3].parse().unwrap();
        assert!(
            adaptive < statics,
            "adaptive must beat StaticBlock under churn: {adaptive} vs {statics}"
        );
        let threads = &table.rows[1];
        assert_eq!(threads[0], "threads");
        let t_adaptive: f64 = threads[2].parse().unwrap();
        let t_static: f64 = threads[3].parse().unwrap();
        // The work critical path is schedule-determined (not wall-clock), so
        // the ramped workload makes static's equal-count blocks structurally
        // unbalanced; demand-driven adaptive chunking must beat it.
        assert!(
            t_adaptive < t_static,
            "adaptive must beat StaticBlock on the thread backend: {t_adaptive} vs {t_static}"
        );
        // The injected churn must be visible as recovery work.
        let retried: usize = threads[6].parse().unwrap();
        assert!(retried >= 1, "thread churn must report retries");
        // The work-stealing contender completes on both backends and its
        // critical path stays in the same class as the adaptive run's (the
        // direction of the steal-vs-demand comparison is pinned by E16).
        for row in &table.rows {
            let worksteal: f64 = row[8].parse().unwrap();
            assert!(worksteal > 0.0, "worksteal cost must be positive: {row:?}");
        }
    }

    #[test]
    fn e11_only_the_engine_backed_variant_demotes_the_slowed_worker() {
        let table = e11_thread_slowdown(3000, 25.0);
        assert_eq!(table.len(), 2);
        let demand = &table.rows[0];
        let adaptive = &table.rows[1];
        assert_eq!(demand[0], "demand-driven");
        assert_eq!(adaptive[0], "full-adaptive");
        // Without the engine there is nothing to log.
        assert_eq!(demand[4], "0");
        assert_eq!(demand[5], "0");
        // With the engine the 25x worker must be demoted.
        let demotions: usize = adaptive[4].parse().unwrap();
        assert!(demotions >= 1, "adaptive row must demote: {adaptive:?}");
        // Cut off instead of trickling on: the slowed worker absorbs no
        // more units than under pure demand-driven pulling.
        let demand_units: usize = demand[2].parse().unwrap();
        let adaptive_units: usize = adaptive[2].parse().unwrap();
        assert!(
            adaptive_units <= demand_units,
            "demotion must not increase the slowed worker's share: {adaptive_units} vs {demand_units}"
        );
    }

    #[test]
    fn e12_reports_all_three_variants_with_wire_accounting() {
        if grasp_proc::find_worker_bin().is_none() {
            // `cargo test` of this crate alone may predate the root-package
            // worker binary; the root integration tests pin the full proc
            // acceptance either way.
            eprintln!("e12 test skipped: grasp-proc-worker not built yet");
            return;
        }
        let table = e12_proc_backend(96, 16);
        assert_eq!(table.len(), 3);
        assert_eq!(table.rows[0][0], "threads");
        assert_eq!(table.rows[1][0], "proc-spin");
        assert_eq!(table.rows[2][0], "proc-matmul");
        for row in &table.rows {
            let makespan: f64 = row[1].parse().unwrap();
            assert!(makespan >= 0.0, "row {row:?}");
        }
        // Only the process rows cross a wire.  (No ordering assertion
        // between the two proc rows: heartbeat frames scale with wall time,
        // which is scheduler noise under a parallel test run.)
        let bytes: Vec<u64> = table.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert_eq!(bytes[0], 0);
        assert!(bytes[1] > 0 && bytes[2] > 0);
        // The proc rows spend measurable encode time, and the pipe transport
        // is zero-copy: nothing is copied beyond the one encode per frame.
        for row in &table.rows[1..] {
            let encode_s: f64 = row[6].parse().unwrap();
            assert!(encode_s > 0.0, "proc rows must report encode time: {row:?}");
            assert_eq!(row[7], "0.0", "pipes must be zero-copy: {row:?}");
        }
    }

    #[test]
    fn e13_only_the_growing_pool_records_mid_run_admissions() {
        let table = e13_net_membership(48, 4);
        assert_eq!(table.len(), 2);
        let fixed = &table.rows[0];
        let growing = &table.rows[1];
        assert_eq!(fixed[0], "fixed");
        assert_eq!(growing[0], "growing");
        // The fixed pool is complete before dispatch: nothing joins mid-run.
        assert_eq!(fixed[5], "0");
        assert_eq!(fixed[6], "0");
        assert_eq!(fixed[7], "0");
        // The growing pool starts at half strength and admits the rest
        // mid-run, each newcomer through its calibration prefix.
        assert_eq!(growing[1], "2");
        let joins: usize = growing[5].parse().unwrap();
        assert_eq!(joins, 2, "both late workers must be admitted: {growing:?}");
        let probes: usize = growing[6].parse().unwrap();
        assert_eq!(probes, 4, "two probes per admitted newcomer");
        let late_units: usize = growing[7].parse().unwrap();
        assert!(
            late_units > 0,
            "late joiners must absorb real units after calibrating"
        );
        // Both variants report the wire-copy accounting: loopback's channel
        // hand-off is counted, so the per-unit copy volume is non-zero.
        for row in &table.rows {
            let encode_s: f64 = row[8].parse().unwrap();
            let copied: f64 = row[9].parse().unwrap();
            assert!(encode_s >= 0.0, "encode seconds must parse: {row:?}");
            assert!(
                copied > 0.0,
                "loopback hand-off copies must be counted: {row:?}"
            );
        }
    }

    #[test]
    fn e14_the_resident_service_beats_per_job_spin_up_and_reuses_profiles() {
        // The throughput comparison races wall clocks, so one measurement can
        // be unlucky when the whole suite shares the machine: take the best
        // of three runs before judging the direction of the result.
        let mut table = e14_service(12, 4);
        for _ in 0..2 {
            let speedup: f64 = table.rows[1][6].parse().unwrap();
            if speedup > 1.0 {
                break;
            }
            table = e14_service(12, 4);
        }
        assert_eq!(table.len(), 2);
        let spinup = &table.rows[0];
        let service = &table.rows[1];
        assert_eq!(spinup[0], "spin-up");
        assert_eq!(service[0], "service");
        let spinup_rate: f64 = spinup[3].parse().unwrap();
        let service_rate: f64 = service[3].parse().unwrap();
        assert!(
            service_rate > spinup_rate,
            "the resident service must out-throughput per-job spin-up \
             (service {service_rate}/s vs spin-up {spinup_rate}/s)"
        );
        let speedup: f64 = service[6].parse().unwrap();
        assert!(speedup > 1.0, "job_speedup column must agree: {speedup}");
        // Cached calibration must be re-served across at least two jobs.
        let hits: u64 = service[7].parse().unwrap();
        let reusing: usize = service[8].parse().unwrap();
        assert!(hits > 0, "the profile cache must be exercised");
        assert!(
            reusing >= 2,
            "at least two jobs must reuse cached profiles, got {reusing}"
        );
        // Round accounting is sane: between one shared round for everything
        // and one round per job.  (Whether jobs actually coalesce depends on
        // arrival pacing vs round latency; the deterministic batching
        // guarantee is asserted in grasp-service's own tests.)
        let rounds: u64 = service[9].parse().unwrap();
        assert!(
            (1..=12).contains(&rounds),
            "round count out of range: {rounds} rounds for 12 jobs"
        );
    }

    #[test]
    fn e15_scale_smoke_conserves_units_and_reports_a_positive_sim_rate() {
        let table = e15_scale_smoke(64, 2_000, seed());
        assert_eq!(table.len(), 1);
        let row = &table.rows[0];
        assert_eq!(row[0], "64");
        assert_eq!(row[1], "2000");
        let makespan: f64 = row[2].parse().unwrap();
        let rate: f64 = row[4].parse().unwrap();
        assert!(makespan > 0.0 && rate > 0.0, "row {row:?}");
    }

    #[test]
    fn e16_stealing_rebalances_the_asymmetric_farm() {
        let table = e16_steal_rebalance(240, 8.0);
        assert_eq!(table.len(), 2);
        let demand = &table.rows[0];
        let steal = &table.rows[1];
        assert_eq!(demand[0], "demand-driven");
        assert_eq!(steal[0], "work-stealing");
        // Thieves must actually move work off the loaded deques.
        let completed: usize = steal[4].parse().unwrap();
        let stolen: usize = steal[5].parse().unwrap();
        assert!(completed >= 1, "no completed steals recorded: {steal:?}");
        assert!(stolen >= completed, "units_stolen below steal count");
        // The headline claim: redistributing the slow worker's deque beats
        // stranding an irrevocable demand chunk on it (weighted critical
        // path, averaged over reps — schedule-determined, not wall-clock).
        let speedup: f64 = steal[6].parse().unwrap();
        assert!(
            speedup > 1.0,
            "work stealing must beat demand-driven on the asymmetric farm: {speedup}"
        );
    }

    #[test]
    fn e17_speculation_absorbs_the_tail_straggler() {
        let table = e17_speculation(12, 25.0);
        assert_eq!(table.len(), 2);
        let plain = &table.rows[0];
        let spec = &table.rows[1];
        assert_eq!(plain[0], "no-speculation");
        assert_eq!(spec[0], "speculation");
        // Duplicates must actually launch and at least one must win the
        // race against the 25x-slowed straggler (summed across reps).
        let speculated: usize = spec[3].parse().unwrap();
        let wins: usize = spec[4].parse().unwrap();
        assert!(speculated >= 1, "no duplicates launched: {spec:?}");
        assert!(wins >= 1, "no speculation win recorded: {spec:?}");
        assert!(speculated >= wins, "wins cannot exceed launches");
        // The headline claim: first-result-wins moves the superseded tail
        // units off the slowed worker, so the weighted critical path must
        // not lose to the no-speculation baseline.
        let speedup: f64 = spec[5].parse().unwrap();
        assert!(
            speedup >= 1.0,
            "speculation must not lose the tail to the straggler: {speedup}"
        );
    }

    #[test]
    fn e8_produces_one_row_per_forecaster() {
        let table = e8_forecaster_accuracy(300);
        assert_eq!(table.len(), 7);
        // Every MAE cell parses and is finite and non-negative.
        for row in &table.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }
}
