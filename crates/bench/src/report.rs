//! Plain-text report formatting (aligned tables and CSV-style series).
//!
//! The experiment binaries print their results through these helpers so the
//! output of `cargo run -p grasp-bench --bin exp_*` can be pasted directly
//! into EXPERIMENTS.md.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title printed above the header.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should match the header length).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format a [`Table`] with aligned columns.
pub fn format_table(table: &Table) -> String {
    let mut widths: Vec<usize> = table.headers.iter().map(|h| h.len()).collect();
    for row in &table.rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            } else {
                widths.push(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {} ==\n", table.title));
    let header: Vec<String> = table
        .headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
        .collect();
    out.push_str(&header.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in &table.rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:<width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect();
        out.push_str(&cells.join("  "));
        out.push('\n');
    }
    out
}

/// A named (x, y…) series, printed as CSV — the "figure" output format.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Series title printed above the CSV block.
    pub title: String,
    /// Column names (first is the x axis).
    pub columns: Vec<String>,
    /// Data points.
    pub points: Vec<Vec<f64>>,
}

impl Series {
    /// Create a series with the given title and column names.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Series {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            points: Vec::new(),
        }
    }

    /// Append a data point.
    pub fn push(&mut self, point: Vec<f64>) {
        self.points.push(point);
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Format a [`Series`] as a titled CSV block.
pub fn format_series(series: &Series) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} ==\n", series.title));
    out.push_str(&series.columns.join(","));
    out.push('\n');
    for p in &series.points {
        let cells: Vec<String> = p.iter().map(|v| format!("{v:.6}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Escape a string for inclusion in a JSON document.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emit a table cell as a JSON value: a bare number when the cell parses as
/// a finite float (so makespans and adaptation counts stay machine-usable),
/// a JSON string otherwise.
fn json_cell(cell: &str) -> String {
    match cell.trim().parse::<f64>() {
        // Re-format through Display so the emitted token is always a valid
        // JSON number (a cell like "1." parses but is not valid JSON).
        Ok(v) if v.is_finite() => format!("{v}"),
        _ => json_string(cell),
    }
}

/// Render a [`Table`] as a JSON object
/// (`{"type":"table","title":…,"headers":[…],"rows":[[…]]}`); numeric cells
/// become JSON numbers.  Used by `run_all` to emit `BENCH_results.json`.
pub fn table_json(table: &Table) -> String {
    let headers: Vec<String> = table.headers.iter().map(|h| json_string(h)).collect();
    let rows: Vec<String> = table
        .rows
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(|c| json_cell(c)).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!(
        "{{\"type\":\"table\",\"title\":{},\"headers\":[{}],\"rows\":[{}]}}",
        json_string(&table.title),
        headers.join(","),
        rows.join(",")
    )
}

/// Render a structured failure record for `BENCH_results.json`
/// (`{"type":"failed","experiment":…,"error":…}`): what `run_all` emits when
/// one experiment panics, so a single broken experiment is visible in the
/// machine-readable trajectory instead of aborting the whole harness.  The
/// gate (`run_all --check`) turns recorded failures into a red build.
pub fn failed_json(experiment: &str, error: &str) -> String {
    format!(
        "{{\"type\":\"failed\",\"experiment\":{},\"error\":{}}}",
        json_string(experiment),
        json_string(error)
    )
}

/// Render a [`Series`] as a JSON object
/// (`{"type":"series","title":…,"columns":[…],"points":[[…]]}`).  Non-finite
/// points are emitted as `null` (JSON has no NaN).
pub fn series_json(series: &Series) -> String {
    let columns: Vec<String> = series.columns.iter().map(|c| json_string(c)).collect();
    let points: Vec<String> = series
        .points
        .iter()
        .map(|p| {
            let vals: Vec<String> = p
                .iter()
                .map(|v| {
                    if v.is_finite() {
                        format!("{v}")
                    } else {
                        "null".to_string()
                    }
                })
                .collect();
            format!("[{}]", vals.join(","))
        })
        .collect();
    format!(
        "{{\"type\":\"series\",\"title\":{},\"columns\":[{}],\"points\":[{}]}}",
        json_string(&series.title),
        columns.join(","),
        points.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "22".into()]);
        let s = format_table(&t);
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn series_formats_as_csv() {
        let mut s = Series::new("fig", &["x", "y"]);
        s.push(vec![1.0, 2.0]);
        s.push(vec![2.0, 4.0]);
        let text = format_series(&s);
        assert!(text.contains("x,y"));
        assert!(text.contains("2.000000,4.000000"));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let mut t = Table::new("ragged", &["a"]);
        t.push_row(vec!["1".into(), "extra".into()]);
        assert!(format_table(&t).contains("extra"));
    }

    #[test]
    fn table_json_emits_numbers_and_escaped_strings() {
        let mut t = Table::new("E\"42\": demo\n", &["name", "makespan_s"]);
        t.push_row(vec!["adaptive".into(), "12.50".into()]);
        t.push_row(vec!["1.".into(), "inf".into()]);
        let json = table_json(&t);
        assert!(json.starts_with("{\"type\":\"table\",\"title\":\"E\\\"42\\\": demo\\n\""));
        // Numeric cell emitted as a bare number…
        assert!(json.contains("[\"adaptive\",12.5]"), "{json}");
        // …and cells that parse but are not valid JSON numbers ("1." / inf)
        // fall back to strings.
        assert!(json.contains("[1,\"inf\"]"), "{json}");
    }

    #[test]
    fn failed_json_escapes_panic_messages() {
        let json = failed_json("E12", "assertion \"x\" failed\nleft: 1");
        assert_eq!(
            json,
            "{\"type\":\"failed\",\"experiment\":\"E12\",\
             \"error\":\"assertion \\\"x\\\" failed\\nleft: 1\"}"
        );
    }

    #[test]
    fn series_json_emits_points_and_nulls() {
        let mut s = Series::new("fig", &["x", "y"]);
        s.push(vec![1.0, 2.5]);
        s.push(vec![2.0, f64::NAN]);
        let json = series_json(&s);
        assert!(json.contains("\"columns\":[\"x\",\"y\"]"));
        assert!(json.contains("[1,2.5]"));
        assert!(json.contains("[2,null]"));
    }
}
