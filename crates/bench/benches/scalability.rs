//! Criterion bench: adaptive farm at growing pool sizes — supports E6.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_bench::{bursty_grid, standard_farm_tasks, ScenarioSeed};
use grasp_core::{GraspConfig, TaskFarm};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    let tasks = standard_farm_tasks(200, 60.0);
    for nodes in [8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let grid = bursty_grid(nodes, 40.0, ScenarioSeed::default());
                TaskFarm::new(GraspConfig::default())
                    .run(&grid, &tasks)
                    .unwrap()
            });
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
