//! Criterion bench: farm riding out a load spike, adaptive vs rigid — supports E7.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_bench::{spike_grid, standard_farm_tasks};
use grasp_core::{GraspConfig, TaskFarm};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptation_response");
    group.sample_size(10);
    let tasks = standard_farm_tasks(200, 60.0);
    for (name, cfg) in [
        ("adaptive", GraspConfig::default()),
        ("rigid", GraspConfig::static_baseline()),
    ] {
        group.bench_with_input(BenchmarkId::new("variant", name), &cfg, |b, cfg| {
            b.iter(|| {
                let grid = spike_grid(16, 40.0, 0.5, 40.0, 1e6);
                TaskFarm::new(*cfg).run(&grid, &tasks).unwrap()
            });
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
