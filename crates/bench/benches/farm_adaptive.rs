//! Criterion bench: adaptive farm vs baselines on the bursty grid — supports E2.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_bench::{bursty_grid, standard_farm_tasks, ScenarioSeed};
use grasp_core::{GraspConfig, TaskFarm};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("farm_adaptive");
    group.sample_size(10);
    let tasks = standard_farm_tasks(200, 60.0);
    for (name, cfg) in [
        ("adaptive", GraspConfig::default()),
        ("static", GraspConfig::static_baseline()),
        ("self-sched", GraspConfig::self_scheduling_baseline()),
    ] {
        group.bench_with_input(BenchmarkId::new("policy", name), &cfg, |b, cfg| {
            b.iter(|| {
                let grid = bursty_grid(16, 40.0, ScenarioSeed::default());
                TaskFarm::new(*cfg).run(&grid, &tasks).unwrap()
            });
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
