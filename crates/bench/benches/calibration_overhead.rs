//! Criterion bench: whole-job cost at different calibration sample sizes — supports E5.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_bench::{loaded_heterogeneous_grid, standard_farm_tasks, ScenarioSeed};
use grasp_core::{Grasp, GraspConfig, SimBackend, Skeleton};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration_overhead");
    group.sample_size(10);
    let skeleton = Skeleton::farm(standard_farm_tasks(150, 60.0));
    for samples in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("samples", samples),
            &samples,
            |b, &samples| {
                let mut cfg = GraspConfig::default();
                cfg.calibration.samples_per_node = samples;
                b.iter(|| {
                    let grid = loaded_heterogeneous_grid(16, ScenarioSeed::default());
                    Grasp::new(cfg)
                        .run(&SimBackend::new(&grid), &skeleton)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
