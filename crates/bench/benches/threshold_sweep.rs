//! Criterion bench: farm execution across threshold factors — supports E4.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_bench::{bursty_grid, standard_farm_tasks, ScenarioSeed};
use grasp_core::{GraspConfig, TaskFarm, ThresholdPolicy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_sweep");
    group.sample_size(10);
    let tasks = standard_farm_tasks(150, 60.0);
    for factor in [1.25_f64, 2.0, 4.0] {
        group.bench_with_input(BenchmarkId::new("factor", factor), &factor, |b, &factor| {
            let mut cfg = GraspConfig::default();
            cfg.execution.threshold = ThresholdPolicy::Factor { factor };
            b.iter(|| {
                let grid = bursty_grid(12, 40.0, ScenarioSeed::default());
                TaskFarm::new(cfg).run(&grid, &tasks).unwrap()
            });
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
