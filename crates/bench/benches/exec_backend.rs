//! Criterion bench: the real-thread shared-memory backend (farm + pipeline).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_core::config::BackendConfig;
use grasp_core::SchedulePolicy;
use grasp_exec::{ThreadFarm, ThreadPipeline};
use grasp_workloads::mandelbrot::MandelbrotJob;

fn bench(c: &mut Criterion) {
    let job = MandelbrotJob {
        width: 256,
        height: 192,
        tiles_x: 8,
        tiles_y: 6,
        max_iter: 300,
        ..MandelbrotJob::default()
    };
    let tiles = job.tiles();
    let mut group = c.benchmark_group("exec_farm_mandelbrot");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let farm = ThreadFarm::new(w).with_policy(SchedulePolicy::Guided { min_chunk: 1 });
            b.iter(|| farm.run(&tiles, |t| job.render_tile(t)))
        });
    }
    group.finish();

    // Dispatch-hot-path contention: thousands of near-zero-cost tasks under
    // the adaptive weighted policy, which derives the pool-mean weight on
    // every chunk request.  Before the per-worker running sums moved behind
    // atomics this locked every worker's full time history per request —
    // this group is the regression guard for that contention win.
    let mut group = c.benchmark_group("exec_farm_contention");
    group.sample_size(10);
    let tiny: Vec<u64> = (0..20_000).collect();
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("adaptive_weighted_tiny_tasks", workers),
            &workers,
            |b, &w| {
                let farm = ThreadFarm::new(w)
                    .with_policy(SchedulePolicy::AdaptiveWeighted { min_chunk: 1 });
                b.iter(|| farm.run(&tiny, |&x| x.wrapping_mul(0x9E3779B97F4A7C15)))
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("exec_pipeline");
    group.sample_size(10);
    group.bench_function("three_stage_u64", |b| {
        b.iter(|| {
            let pipeline = ThreadPipeline::new()
                .stage(|x: u64| x.wrapping_mul(2862933555777941757).wrapping_add(1))
                .stage(|x: u64| x.rotate_left(17) ^ 0xABCD)
                .stage(|x: u64| x | 1);
            pipeline.run((0..2_000u64).collect())
        })
    });
    group.finish();

    // The unified skeleton API end to end on threads: a farm of four
    // pipeline lanes, the composition the grid experiments also use.
    use grasp_core::{Grasp, GraspConfig, Skeleton, StageSpec, TaskSpec};
    use grasp_exec::ThreadBackend;
    let mut group = c.benchmark_group("exec_skeleton");
    group.sample_size(10);
    let lane = Skeleton::pipeline(StageSpec::balanced(3, 8.0, 1024), 64);
    let nested = Skeleton::farm_of(vec![
        lane.clone(),
        lane.clone(),
        lane,
        Skeleton::farm(TaskSpec::uniform(64, 8.0, 1024, 1024)),
    ]);
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("farm_of_pipelines_workers", workers),
            &workers,
            |b, &w| {
                let backend =
                    ThreadBackend::new(w).with_config(BackendConfig::new().spin_per_work_unit(200));
                let grasp = Grasp::new(GraspConfig::default());
                b.iter(|| grasp.run(&backend, &nested).unwrap())
            },
        );
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
