//! Criterion bench: the real-thread shared-memory backend (farm + pipeline).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_core::SchedulePolicy;
use grasp_exec::{ThreadFarm, ThreadPipeline};
use grasp_workloads::mandelbrot::MandelbrotJob;

fn bench(c: &mut Criterion) {
    let job = MandelbrotJob {
        width: 256,
        height: 192,
        tiles_x: 8,
        tiles_y: 6,
        max_iter: 300,
        ..MandelbrotJob::default()
    };
    let tiles = job.tiles();
    let mut group = c.benchmark_group("exec_farm_mandelbrot");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let farm = ThreadFarm::new(w).with_policy(SchedulePolicy::Guided { min_chunk: 1 });
            b.iter(|| farm.run(&tiles, |t| job.render_tile(t)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("exec_pipeline");
    group.sample_size(10);
    group.bench_function("three_stage_u64", |b| {
        b.iter(|| {
            let pipeline = ThreadPipeline::new()
                .stage(|x: u64| x.wrapping_mul(2862933555777941757).wrapping_add(1))
                .stage(|x: u64| x.rotate_left(17) ^ 0xABCD)
                .stage(|x: u64| x | 1);
            pipeline.run((0..2_000u64).collect())
        })
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
