//! Criterion bench: the real workload kernels used by the examples and the
//! shared-memory backend.
use criterion::{criterion_group, criterion_main, Criterion};
use grasp_workloads::{
    blackscholes::BlackScholesSweep, imaging::ImagePipeline, mandelbrot::MandelbrotJob,
    matmul::MatMulJob, quadrature::QuadratureJob, seqmatch::SequenceMatchJob,
};

fn bench(c: &mut Criterion) {
    let mb = MandelbrotJob::small();
    let tile = mb.tiles()[5];
    c.bench_function("kernels/mandelbrot_tile", |b| {
        b.iter(|| mb.render_tile(&tile))
    });

    let mm = MatMulJob::small();
    let (a, bmat) = mm.generate_inputs();
    c.bench_function("kernels/matmul_band_64", |b| {
        b.iter(|| mm.multiply_band(&a, &bmat, 0, mm.block_rows))
    });

    let quad = QuadratureJob::small();
    c.bench_function("kernels/quadrature_panel", |b| {
        b.iter(|| quad.integrate_panel(3))
    });

    let seq = SequenceMatchJob::small();
    let queries = seq.generate_queries();
    let subjects = seq.generate_subjects();
    c.bench_function("kernels/smith_waterman_query", |b| {
        b.iter(|| seq.score_query(&queries[0], &subjects))
    });

    let img = ImagePipeline::small();
    let frame = img.frame(0);
    c.bench_function("kernels/image_pipeline_frame", |b| {
        b.iter(|| img.process_frame(&frame))
    });

    let bs = BlackScholesSweep::small();
    c.bench_function("kernels/black_scholes_batch", |b| {
        b.iter(|| bs.price_batch(0))
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
