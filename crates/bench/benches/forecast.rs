//! Criterion bench: forecaster update/prediction cost and OLS fits — supports E8.
use criterion::{criterion_group, criterion_main, Criterion};
use gridmon::{AdaptiveForecaster, Ar1Forecaster, Forecaster};
use gridstats::{linear_regression, multivariate_regression};

fn bench(c: &mut Criterion) {
    let series: Vec<f64> = (0..10_000)
        .map(|i| 0.4 + 0.3 * ((i as f64) / 50.0).sin())
        .collect();
    c.bench_function("forecast/adaptive_10k_updates", |b| {
        b.iter(|| {
            let mut f = AdaptiveForecaster::standard();
            for &v in &series {
                f.observe(v);
            }
            f.predict()
        })
    });
    c.bench_function("forecast/ar1_10k_updates", |b| {
        b.iter(|| {
            let mut f = Ar1Forecaster::new(64);
            for &v in &series {
                f.observe(v);
            }
            f.predict()
        })
    });
    let x: Vec<f64> = (0..512).map(|i| i as f64).collect();
    let y: Vec<f64> = x.iter().map(|v| 3.0 + 0.5 * v).collect();
    c.bench_function("stats/univariate_ols_512", |b| {
        b.iter(|| linear_regression(&x, &y).unwrap())
    });
    let rows: Vec<Vec<f64>> = (0..512)
        .map(|i| vec![i as f64, ((i * 13) % 11) as f64, ((i * 7) % 5) as f64])
        .collect();
    let ym: Vec<f64> = rows
        .iter()
        .map(|r| 1.0 + r[0] - 2.0 * r[1] + 0.5 * r[2])
        .collect();
    c.bench_function("stats/multivariate_ols_512x3", |b| {
        b.iter(|| multivariate_regression(&rows, &ym).unwrap())
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
