//! Criterion bench: adaptive vs rigid pipeline with a load spike — supports E3.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_bench::spike_grid;
use grasp_core::{GraspConfig, Pipeline, StageSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_adaptive");
    group.sample_size(10);
    let stages = vec![
        StageSpec::new(0, 20.0, 256 * 1024, 512 * 1024),
        StageSpec::new(1, 40.0, 256 * 1024, 512 * 1024),
        StageSpec::new(2, 30.0, 256 * 1024, 512 * 1024),
        StageSpec::new(3, 10.0, 256 * 1024, 512 * 1024),
    ];
    let mut rigid = GraspConfig::default();
    rigid.execution.adaptive = false;
    for (name, cfg) in [("adaptive", GraspConfig::default()), ("rigid", rigid)] {
        group.bench_with_input(BenchmarkId::new("variant", name), &cfg, |b, cfg| {
            b.iter(|| {
                let grid = spike_grid(6, 40.0, 0.67, 25.0, 1e6);
                Pipeline::new(*cfg).run(&grid, &stages, 200).unwrap()
            });
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
