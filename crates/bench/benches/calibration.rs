//! Criterion bench: cost of Algorithm 1 (calibration) per mode — supports E1.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_bench::{transient_load_grid, ScenarioSeed};
use grasp_core::calibration::{CalibrationMode, Calibrator};
use grasp_core::{CalibrationConfig, TaskSpec};
use gridmon::MonitorRegistry;
use gridsim::{NodeId, SimTime};

fn bench(c: &mut Criterion) {
    let grid = transient_load_grid(32, 400.0, ScenarioSeed::default());
    let tasks = TaskSpec::uniform(256, 60.0, 32 * 1024, 32 * 1024);
    let mut group = c.benchmark_group("calibration");
    group.sample_size(20);
    for mode in [
        CalibrationMode::TimeOnly,
        CalibrationMode::Univariate,
        CalibrationMode::Multivariate,
    ] {
        group.bench_with_input(BenchmarkId::new("mode", mode.name()), &mode, |b, &mode| {
            let cfg = CalibrationConfig {
                mode,
                samples_per_node: 3,
                selection_fraction: 0.5,
                ..CalibrationConfig::default()
            };
            let calibrator = Calibrator::new(cfg);
            b.iter(|| {
                let mut registry = MonitorRegistry::new(NodeId(0), 64);
                calibrator
                    .calibrate(
                        &grid,
                        &mut registry,
                        &grid.node_ids(),
                        &tasks,
                        NodeId(0),
                        SimTime::ZERO,
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
