//! Umbrella crate for the GRASP reproduction workspace.
//!
//! This crate re-exports the public surfaces of the member crates so that the
//! examples under `examples/` and the integration tests under `tests/` can
//! address the whole system through a single dependency.  Downstream users
//! would normally depend on [`grasp_core`] directly.

pub use grasp_core;
pub use grasp_exec;
pub use grasp_net;
pub use grasp_proc;
pub use grasp_service;
pub use grasp_workloads;
pub use gridmon;
pub use gridsim;
pub use gridstats;
