//! The worker-mode entry point of the process-isolated backend: a re-exec
//! target that speaks the `grasp_core::wire` protocol over its standard
//! streams.  `grasp_proc::ProcBackend` spawns one of these per worker; see
//! `grasp_proc::worker` for the protocol lifecycle.
//!
//! The binary lives in the workspace root so `cargo build` (and the build
//! step of `cargo test`, via the root integration tests) always produces it
//! alongside every other artefact.

fn main() {
    std::process::exit(grasp_proc::worker::run_stdio());
}
