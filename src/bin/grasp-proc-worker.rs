//! The worker-mode entry point of the process-isolated backend: a re-exec
//! target that speaks the `grasp_core::wire` protocol over its standard
//! streams, or — with `--shm <path>` — over a shared-memory ring created by
//! the master.  `grasp_proc::ProcBackend` spawns one of these per worker;
//! see `grasp_proc::worker` for the protocol lifecycle.
//!
//! The binary lives in the workspace root so `cargo build` (and the build
//! step of `cargo test`, via the root integration tests) always produces it
//! alongside every other artefact.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code = match args.iter().position(|a| a == "--shm") {
        Some(i) => match args.get(i + 1) {
            Some(path) => grasp_proc::worker::run_shm(path),
            None => {
                eprintln!("grasp-proc-worker: --shm requires a ring file path");
                2
            }
        },
        None => grasp_proc::worker::run_stdio(),
    };
    std::process::exit(code);
}
