//! The worker-mode entry point of the socket backend: connects to a
//! `grasp_net::NetBackend` master at the endpoint given as the first
//! argument, passes the Join/Welcome registration handshake, and serves
//! tasks until released.  See `grasp_net::worker` for the protocol
//! lifecycle.
//!
//! The binary lives in the workspace root so `cargo build` always produces
//! it alongside every other artefact.

fn main() {
    let Some(addr) = std::env::args().nth(1) else {
        eprintln!("usage: grasp-net-worker <master-host:port>");
        std::process::exit(2);
    };
    let opts = grasp_net::worker::WorkerOptions::default();
    std::process::exit(grasp_net::worker::run_tcp(&addr, opts));
}
